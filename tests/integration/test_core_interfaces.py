"""Integration tests: composing the five interfaces (the paper's point).

The interesting behaviour is not each interface alone but their
composition: guards on service metadata vetting dynamic code before it
propagates; durability + load balancing versioning policies; file
types riding the lease machinery.
"""

import pytest

from repro.core import (
    DataIOInterface,
    DurabilityInterface,
    FileTypeInterface,
    LoadBalancingInterface,
    MalacologyCluster,
    ServiceMetadataInterface,
    SharedResourceInterface,
)
from repro.errors import NotFound, NotPermitted
from repro.mds.inode import FileType


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=4, mdss=1, seed=77)


def test_service_metadata_guard_vets_writes(cluster):
    c = cluster
    svc = ServiceMetadataInterface(c.admin, cluster=c)

    def guard(key, value):
        if not isinstance(value, dict) or "owner" not in value:
            raise NotPermitted("deployments must declare an owner")
        value["vetted"] = True
        return value

    svc.register_guard("deploy/", guard)
    with pytest.raises(NotPermitted):
        c.do(svc.put("deploy/app", ["no-owner"]))
    c.do(svc.put("deploy/app", {"owner": "ops"}))
    entry = c.do(svc.get("deploy/app"))
    assert entry["value"] == {"owner": "ops", "vetted": True}
    # The guard applies only under its prefix.
    c.do(svc.put("other/app", ["anything"]))


def test_durability_interface_stores_and_lists(cluster):
    c = cluster
    durability = DurabilityInterface(c.admin)
    c.do(durability.store("artifact-1", b"bytes"))
    assert c.do(durability.fetch("artifact-1")) == b"bytes"
    assert c.do(durability.exists("artifact-1"))
    assert not c.do(durability.exists("artifact-ghost"))


def test_load_balancing_versions_compose_with_durability(cluster):
    c = cluster
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("alpha", "def when():\n    return False\n"))
    c.do(lb.publish_policy("beta", "def when():\n    return False\n"))
    assert c.do(lb.get_version()) == "beta"
    # Both versions remain durably fetchable — rollback is a version
    # flip, not a re-upload.
    durability = DurabilityInterface(c.admin)
    assert c.do(durability.exists("mantle.policy.alpha"))
    c.do(lb.set_version("alpha"))
    assert c.do(lb.get_version()) == "alpha"


def test_custom_file_type_rides_the_lease_machinery(cluster):
    c = cluster

    class HighWaterMark(FileType):
        """Tracks the maximum value ever reported."""

        name = "hwm"

        def initial_state(self):
            return {"max": None}

        def execute(self, inode, method, args):
            if method == "report":
                value = args["value"]
                current = inode.embedded["max"]
                if current is None or value > current:
                    inode.embedded["max"] = value
                return inode.embedded["max"]
            if method == "read":
                return inode.embedded["max"]
            raise NotFound(f"hwm has no method {method!r}")

        def merge_flush(self, inode, dirty):
            value = dirty.get("max")
            current = inode.embedded["max"]
            if value is not None and (current is None or value > current):
                inode.embedded["max"] = value

    if not FileTypeInterface.known_type("hwm"):
        FileTypeInterface.register_type(HighWaterMark())
    ftype = FileTypeInterface(c.admin)
    c.do(ftype.create("/hwm-sensor", "hwm"))
    assert c.do(ftype.execute("/hwm-sensor", "report", {"value": 10})) == 10
    assert c.do(ftype.execute("/hwm-sensor", "report", {"value": 7})) == 10
    assert c.do(ftype.execute("/hwm-sensor", "read")) == 10


def test_data_io_and_service_metadata_compose(cluster):
    """Register an interface AND its deployment record atomically-ish:
    the version in service metadata always refers to an installed
    class."""
    c = cluster
    data_io = DataIOInterface(c.admin)
    svc = ServiceMetadataInterface(c.admin)
    source = ("def touch(ctx, args):\n"
              "    ctx.xattr_set('touched', True)\n"
              "    return {'ok': True}\n"
              "METHODS = {'touch': touch}\n")
    c.do(data_io.install("composed", 1, source, category="metadata"))
    c.do(svc.put("interfaces/composed", {"version": 1}))
    c.run(2.0)
    installed = c.do(data_io.installed())
    recorded = c.do(svc.get("interfaces/composed"))
    assert installed["composed"]["version"] == recorded["value"]["version"]
    out = c.do(data_io.execute("data", "obj-x", "composed", "touch"))
    assert out == {"ok": True}


def test_shared_resource_policy_changes_apply_to_new_grants(cluster):
    c = cluster
    shared = SharedResourceInterface(c.admin)
    c.do(c.admin.fs_create("/policy-probe", file_type="sequencer"))
    c.do(shared.set_lease_policy("round-trip"))
    client = c.new_client("probe-1")
    proc = client.do(client.seq_next("/policy-probe"))
    c.sim.run_until_complete(proc)
    assert client._caps == {}  # round-trip: nothing cached
    c.do(shared.set_lease_policy("best-effort"))
    client2 = c.new_client("probe-2")
    proc = client2.do(client2.seq_next("/policy-probe"))
    c.sim.run_until_complete(proc)
    assert client2._caps  # cacheable again
