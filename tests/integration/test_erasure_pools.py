"""Integration tests: erasure-coded pools end to end."""

import pytest

from repro.core import MalacologyCluster
from repro.errors import InvalidArgument, NotFound
from repro.rados.placement import locate


@pytest.fixture(scope="module")
def cluster():
    c = MalacologyCluster.build(osds=4, mdss=0, seed=113)
    c.do(c.admin.rados_create_pool("ecpool", pg_num=16,
                                   ec={"k": 2, "m": 1}))
    c.run(2.0)
    return c


def test_ec_write_read_round_trip(cluster):
    c = cluster
    blob = bytes(range(256)) * 5
    c.do(c.admin.rados_write_full("ecpool", "obj", blob))
    assert c.do(c.admin.rados_read("ecpool", "obj")) == blob
    st = c.do(c.admin.rados_stat("ecpool", "obj"))
    assert st["size"] == len(blob)  # stat sees the logical object size


def test_ec_shards_are_spread_across_the_acting_set(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("ecpool", "spread", b"x" * 999))
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "ecpool", "spread")
    assert len(acting) == 3  # k + m
    by_name = {o.name: o for o in c.osds}
    for i, member in enumerate(acting):
        entry = by_name[member].ec_shards.get(("ecpool", "spread", i))
        assert entry is not None
        assert len(entry["shard"]) == 500  # ceil(999 / 2)


def test_ec_read_survives_one_shard_holder_down(cluster):
    c = cluster
    blob = b"erasure-coded payload " * 40
    c.do(c.admin.rados_write_full("ecpool", "tolerant", blob))
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "ecpool", "tolerant")
    # Kill a NON-primary shard holder: the primary reconstructs from
    # the remaining k shards (data or parity).
    victim = next(o for o in c.osds if o.name == acting[1])
    victim.crash()
    assert c.do(c.admin.rados_read("ecpool", "tolerant")) == blob
    victim.restart()
    c.run(10.0)


def test_ec_overwrite_versions_shards(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("ecpool", "versioned", b"one"))
    c.do(c.admin.rados_write_full("ecpool", "versioned", b"two-longer"))
    assert c.do(c.admin.rados_read("ecpool", "versioned")) == b"two-longer"


def test_ec_pool_rejects_omap_and_exec(cluster):
    c = cluster
    with pytest.raises(InvalidArgument):
        c.do(c.admin.rados_omap_set("ecpool", "obj", "k", 1))
    with pytest.raises(InvalidArgument):
        c.do(c.admin.rados_exec("ecpool", "obj", "numops", "add",
                                {"key": "k", "value": 1}))
    with pytest.raises(InvalidArgument):
        c.do(c.admin.rados_append("ecpool", "obj", b"x"))


def test_ec_remove_deletes_shards(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("ecpool", "doomed", b"bye"))
    c.do(c.admin.rados_remove("ecpool", "doomed"))
    c.run(1.0)
    with pytest.raises(NotFound):
        c.do(c.admin.rados_read("ecpool", "doomed"))
    for osd in c.osds:
        assert not any(key[1] == "doomed" for key in osd.ec_shards)


def test_ec_storage_overhead_is_k_plus_m_over_k(cluster):
    """The point of EC vs replication: 1.5x overhead instead of 2-3x."""
    c = cluster
    blob = b"z" * 9000
    c.do(c.admin.rados_write_full("ecpool", "overhead", blob))
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "ecpool", "overhead")
    by_name = {o.name: o for o in c.osds}
    stored = sum(
        len(by_name[m].ec_shards[("ecpool", "overhead", i)]["shard"])
        for i, m in enumerate(acting))
    assert stored == pytest.approx(len(blob) * 3 / 2, abs=8)
