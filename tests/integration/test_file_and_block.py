"""Integration tests: the file-data and block (RBD) user-facing APIs.

Figure 1 shows Malacology's services sitting alongside the traditional
file / block / object interfaces; these tests exercise the other two
user-facing paths end to end on the same cluster.
"""

import pytest

from repro.core import MalacologyCluster
from repro.errors import InvalidArgument, NotFound
from repro.rbd import Image


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=4, mdss=1, seed=103)


# ----------------------------------------------------------------------
# File data I/O
# ----------------------------------------------------------------------
def test_file_write_read_round_trip(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/files"))
    c.do(c.admin.fs_create("/files/doc"))
    c.do(c.admin.fs_write("/files/doc", 0, b"hello file world"))
    assert c.do(c.admin.fs_read("/files/doc")) == b"hello file world"
    assert c.do(c.admin.fs_stat("/files/doc"))["size"] == 16


def test_file_striping_across_objects(cluster):
    c = cluster
    c.do(c.admin.fs_create("/files/big"))
    bs = c.admin.FILE_OBJECT_SIZE
    blob = bytes((i * 7) % 256 for i in range(bs * 2 + 100))
    c.do(c.admin.fs_write("/files/big", 0, blob))
    assert c.do(c.admin.fs_read("/files/big")) == blob
    # Partial reads spanning a stripe boundary.
    assert c.do(c.admin.fs_read("/files/big", bs - 10, 20)) == \
        blob[bs - 10: bs + 10]
    # The data genuinely striped over multiple RADOS objects.
    st = c.do(c.admin.fs_stat("/files/big"))
    obj0 = c.do(c.admin.rados_stat(
        "data", c.admin._file_object(st["ino"], 0)))
    obj1 = c.do(c.admin.rados_stat(
        "data", c.admin._file_object(st["ino"], 1)))
    assert obj0["size"] == bs and obj1["size"] == bs


def test_file_sparse_writes_read_zeros(cluster):
    c = cluster
    c.do(c.admin.fs_create("/files/sparse"))
    bs = c.admin.FILE_OBJECT_SIZE
    c.do(c.admin.fs_write("/files/sparse", bs * 2, b"tail"))
    data = c.do(c.admin.fs_read("/files/sparse", bs - 4, 8))
    assert data == b"\x00" * 8
    assert c.do(c.admin.fs_read("/files/sparse", bs * 2, 4)) == b"tail"


def test_file_io_on_directory_rejected(cluster):
    with pytest.raises(InvalidArgument):
        cluster.do(cluster.admin.fs_write("/files", 0, b"x"))


def test_read_past_eof_is_empty(cluster):
    c = cluster
    c.do(c.admin.fs_create("/files/short"))
    c.do(c.admin.fs_write("/files/short", 0, b"abc"))
    assert c.do(c.admin.fs_read("/files/short", 10, 5)) == b""
    assert c.do(c.admin.fs_read("/files/short", 1, 100)) == b"bc"


# ----------------------------------------------------------------------
# Block device (RBD)
# ----------------------------------------------------------------------
def test_image_create_write_read(cluster):
    c = cluster
    img = Image(c.admin, "vm-disk")
    c.do(img.create(size=256 * 1024, object_size=32 * 1024))
    pattern = bytes(range(256)) * 16
    c.do(img.write(0, pattern))
    c.do(img.write(100 * 1024, b"deep-write"))
    assert c.do(img.read(0, len(pattern))) == pattern
    assert c.do(img.read(100 * 1024, 10)) == b"deep-write"


def test_image_thin_provisioning_reads_zeros(cluster):
    c = cluster
    img = Image(c.admin, "thin")
    c.do(img.create(size=128 * 1024, object_size=32 * 1024))
    assert c.do(img.read(64 * 1024, 100)) == b"\x00" * 100


def test_image_open_recovers_metadata(cluster):
    c = cluster
    img = Image(c.admin, "reopen")
    c.do(img.create(size=64 * 1024, object_size=16 * 1024))
    c.do(img.write(0, b"persisted"))
    other = Image(c.new_client("rbd-2"), "reopen")
    proc = other.client.do(other.open())
    c.sim.run_until_complete(proc)
    assert other.size == 64 * 1024
    assert other.object_size == 16 * 1024
    proc = other.client.do(other.read(0, 9))
    assert c.sim.run_until_complete(proc) == b"persisted"


def test_image_io_bounds_enforced(cluster):
    c = cluster
    img = Image(c.admin, "bounded")
    c.do(img.create(size=1024))
    with pytest.raises(InvalidArgument):
        c.do(img.write(1000, b"x" * 100))
    with pytest.raises(InvalidArgument):
        c.do(img.read(0, 2048))


def test_image_resize_shrink_trims_objects(cluster):
    c = cluster
    img = Image(c.admin, "shrinky")
    c.do(img.create(size=96 * 1024, object_size=32 * 1024))
    c.do(img.write(80 * 1024, b"doomed"))
    c.do(img.resize(32 * 1024))
    assert img.size == 32 * 1024
    with pytest.raises(NotFound):
        c.do(c.admin.rados_stat("data", img.data_object(2)))
    # Growing back exposes zeros, not stale data.
    c.do(img.resize(96 * 1024))
    assert c.do(img.read(80 * 1024, 6)) == b"\x00" * 6


def test_image_remove_cleans_up(cluster):
    c = cluster
    img = Image(c.admin, "doomed")
    c.do(img.create(size=32 * 1024))
    c.do(img.write(0, b"bye"))
    c.do(img.remove())
    with pytest.raises(NotFound):
        c.do(c.admin.rados_stat("data", img.header_object))


def test_image_duplicate_create_conflicts(cluster):
    from repro.errors import AlreadyExists

    c = cluster
    img = Image(c.admin, "dup-image")
    c.do(img.create(size=1024))
    with pytest.raises(AlreadyExists):
        c.do(Image(c.admin, "dup-image").create(size=2048))


def test_object_snapshot_via_exec(cluster):
    """The Table 1 snapshot example over the wire."""
    c = cluster
    c.do(c.admin.rados_write_full("data", "snappable", b"state-1"))
    c.do(c.admin.rados_exec("data", "snappable", "snapshot", "create",
                            {"name": "before"}))
    c.do(c.admin.rados_write_full("data", "snappable", b"state-2"))
    c.do(c.admin.rados_exec("data", "snappable", "snapshot", "rollback",
                            {"name": "before"}))
    assert c.do(c.admin.rados_read("data", "snappable")) == b"state-1"
