"""Integration tests for Mantle on Malacology (paper section 5.1).

Covers the three properties the re-implementation inherits: consistent
policy *versioning* via the monitors, policy *durability* in RADOS
(including the bounded dereference with Connection Timeout), and
*centralized logging* of balancer faults — plus the actual migration
mechanism driven by injected policies.
"""

import pytest

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.errors import PolicyError
from repro.mantle import MantleBalancer, MantlePolicy, attach_balancers
from repro.mantle import builtin
from repro.mds.server import METADATA_POOL


def build(mdss=2, seed=51, osds=4):
    cluster = MalacologyCluster.build(osds=osds, mdss=mdss, seed=seed)
    attach_balancers(cluster)
    return cluster


def test_policy_version_propagates_to_all_balancers():
    c = build()
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("v1", builtin.GREEDY_SPILL_HALF))
    c.run(12.0)  # one balancing tick
    for mds in c.mdss:
        assert mds.balancer.policy is not None
        assert mds.balancer.policy.version == "v1"


def test_policy_is_durable_in_rados():
    c = build()
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("v-durable", builtin.CEPHFS_WORKLOAD))
    blob = c.do(c.admin.rados_read(METADATA_POOL,
                                   "mantle.policy.v-durable"))
    assert blob.decode() == builtin.CEPHFS_WORKLOAD


def test_policy_upgrade_swaps_without_restart():
    c = build()
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("v1", builtin.GREEDY_SPILL_HALF))
    c.run(12.0)
    c.do(lb.publish_policy("v2", builtin.MANTLE_SEQUENCER))
    c.run(12.0)
    assert all(m.balancer.policy.version == "v2" for m in c.mdss)
    assert c.do(lb.get_version()) == "v2"


def test_broken_policy_is_rejected_and_logged_centrally():
    c = build()
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("v-broken", "def when(:\n"))
    c.run(12.0)
    # Balancers keep running (no crash) with no policy loaded.
    assert all(m.balancer.policy is None for m in c.mdss)
    tail = c.do(c.admin.mon_request("mon_log_tail", {"count": 50}))
    assert any("rejected" in e["message"] and e["severity"] == "ERR"
               for e in tail)


def test_policy_runtime_fault_logged_not_fatal():
    c = build()
    source = "def when():\n    return 1 / 0\n"
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("v-faulty", source))
    c.run(25.0)
    tail = c.do(c.admin.mon_request("mon_log_tail", {"count": 50}))
    assert any("mantle policy" in e["message"] for e in tail)
    assert all(m.alive for m in c.mdss)


def test_policy_read_connection_timeout_is_reported():
    c = build(mdss=1)
    lb = LoadBalancingInterface(c.admin)
    # Point the version at a policy object, then take the object store
    # down so the dereference cannot complete within half a tick.
    c.do(lb.publish_policy("v-slow", builtin.GREEDY_SPILL_HALF))
    # Force a reload by bumping the version WITHOUT a readable object:
    # all OSDs go dark first, so the RADOS read stalls.
    c.do(lb.set_version("v-unreachable"))
    for osd in c.osds:
        osd.crash()
    c.run(30.0)
    leader = c.leader_monitor()
    assert any("Connection Timeout" in e.message
               for e in leader.store.cluster_log), (
        [e.message for e in leader.store.cluster_log][-10:])


def test_explicit_migration_moves_authority_and_data():
    c = build(mdss=2)
    c.do(c.admin.fs_mkdir("/hotdir"))
    c.do(c.admin.fs_create("/hotdir/seq", file_type="sequencer"))
    src = c.mds_of_rank(0)
    proc = src.spawn(src.migrate_subtree("/hotdir", 1))
    c.sim.run_until_complete(proc)
    m = c.mons[0].store.mdsmap
    assert m.subtrees["/hotdir"] == 1
    assert not src.ns.has("/hotdir/seq")
    assert c.mds_of_rank(1).ns.has("/hotdir/seq")
    # Clients keep working across the migration.
    st = c.do(c.admin.fs_stat("/hotdir/seq"))
    assert st["file_type"] == "sequencer"
    pos = c.do(c.admin.seq_next("/hotdir/seq"))
    assert pos == 0


def test_migration_preserves_sequencer_tail():
    c = build(mdss=2)
    c.do(c.admin.fs_mkdir("/keeptail"))
    c.do(c.admin.fs_create("/keeptail/seq", file_type="sequencer"))
    for _ in range(5):
        c.do(c.admin.seq_next("/keeptail/seq"))
    src = c.mds_of_rank(0)
    c.sim.run_until_complete(
        src.spawn(src.migrate_subtree("/keeptail", 1)))
    # The tail carries over: no positions are re-issued.
    assert c.do(c.admin.seq_next("/keeptail/seq")) == 5


def test_proxy_mode_forwards_and_client_mode_redirects():
    c = build(mdss=2)
    lb = LoadBalancingInterface(c.admin)
    c.do(c.admin.fs_mkdir("/moved"))
    c.do(c.admin.fs_create("/moved/f"))
    src = c.mds_of_rank(0)
    c.sim.run_until_complete(src.spawn(src.migrate_subtree("/moved", 1)))

    # Proxy mode: a request sent to the WRONG MDS still succeeds
    # (forwarded internally), no redirect error.
    c.do(lb.set_routing_mode("proxy"))
    c.run(0.5)
    stale = c.new_client("stale-proxy")
    fut = stale.call(c.mds_of_rank(0).name, "mds_req",
                     {"op": "stat", "path": "/moved/f", "args": {}},
                     timeout=5.0)
    result = c.sim.run_until_complete(fut)
    assert result["kind"] == "file"

    # Client mode: the wrong MDS bounces us with the owner's rank.
    c.do(lb.set_routing_mode("client"))
    c.run(0.5)
    from repro.errors import WrongMDS

    stale2 = c.new_client("stale-client")
    fut2 = stale2.call(c.mds_of_rank(0).name, "mds_req",
                       {"op": "stat", "path": "/moved/f", "args": {}},
                       timeout=5.0)
    c.sim.run(until=c.sim.now + 2.0)
    with pytest.raises(WrongMDS) as excinfo:
        fut2.result()
    assert excinfo.value.rank == 1


def test_greedy_spill_policy_migrates_hot_sequencers():
    c = build(mdss=2, seed=52)
    lb = LoadBalancingInterface(c.admin)
    c.do(lb.publish_policy("spill", builtin.GREEDY_SPILL_HALF))
    c.do(c.admin.fs_mkdir("/load"))
    for i in range(4):
        c.do(c.admin.fs_create(f"/load/seq{i}", file_type="sequencer"))
    # Round-trip mode so every request lands on the MDS (load shows up).
    from repro.core import SharedResourceInterface

    c.do(SharedResourceInterface(c.admin).set_lease_policy("round-trip"))

    clients = [c.new_client(f"w{i}") for i in range(4)]

    def hammer(cl, path):
        while True:
            yield from cl.seq_next(path)

    for i, cl in enumerate(clients):
        cl.spawn(hammer(cl, f"/load/seq{i}"))
    c.run(45.0)  # several balancing ticks
    m = c.mons[0].store.mdsmap
    moved = [p for p, r in m.subtrees.items()
             if p.startswith("/load") and r == 1]
    assert moved, f"policy never migrated anything: {m.subtrees}"


def test_policy_source_validation_rejects_missing_when():
    with pytest.raises(PolicyError):
        MantlePolicy("bad", "x = 1\n")
