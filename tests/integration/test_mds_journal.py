"""Integration tests: the MDS metadata journal (cls_log consumer)."""

import pytest

from repro.core import MalacologyCluster
from repro.mds.server import METADATA_POOL


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=3, mdss=1, seed=107)


def journal_events(cluster, rank=0, max_entries=200):
    out = cluster.do(cluster.admin.rados_exec(
        METADATA_POOL, f"mdsjournal.{rank}", "log", "list",
        {"max": max_entries}))
    return [e["payload"] for e in out["entries"]]


def test_mutations_are_journaled_in_order(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/jdir"))
    c.do(c.admin.fs_create("/jdir/f", file_type="sequencer"))
    c.do(c.admin.fs_unlink("/jdir/f"))
    events = journal_events(c)
    ours = [(e["event"], e["path"]) for e in events
            if e["path"].startswith("/jdir")]
    assert ours == [("mkdir", "/jdir"), ("create", "/jdir/f"),
                    ("unlink", "/jdir/f")]
    create_event = next(e for e in events if e["event"] == "create"
                        and e["path"] == "/jdir/f")
    assert create_event["file_type"] == "sequencer"


def test_setattr_journaled_with_size(cluster):
    c = cluster
    c.do(c.admin.fs_create("/jfile"))
    c.do(c.admin.fs_write("/jfile", 0, b"0123456789"))
    events = journal_events(c)
    sets = [e for e in events if e["event"] == "setattr"
            and e["path"] == "/jfile"]
    assert sets and sets[-1]["size"] == 10


def test_journal_survives_in_rados(cluster):
    c = cluster
    st = c.do(c.admin.rados_stat(METADATA_POOL, "mdsjournal.0"))
    assert st["omap_keys"] > 0


def test_journal_trim_keeps_it_bounded():
    from repro.mds.server import MDS

    old_interval = MDS.JOURNAL_TRIM_INTERVAL
    old_batch = MDS.JOURNAL_TRIM_BATCH
    MDS.JOURNAL_TRIM_INTERVAL = 5.0
    MDS.JOURNAL_TRIM_BATCH = 10
    try:
        c = MalacologyCluster.build(osds=3, mdss=1, seed=108)
        for i in range(35):
            c.do(c.admin.fs_create(f"/bulk-{i}"))
        c.run(30.0)  # several trim ticks
        st = c.do(c.admin.rados_stat(METADATA_POOL, "mdsjournal.0"))
        # Trim keeps the backlog near the batch size, not unbounded.
        assert st["omap_keys"] <= 21  # entries + seq xattr slack
    finally:
        MDS.JOURNAL_TRIM_INTERVAL = old_interval
        MDS.JOURNAL_TRIM_BATCH = old_batch
