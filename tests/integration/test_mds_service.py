"""Integration tests for the metadata service on a full cluster."""

import pytest

from repro.core import MalacologyCluster, SharedResourceInterface
from repro.errors import AlreadyExists, NotFound
from repro.mds.server import METADATA_POOL


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=3, mdss=1, seed=31)


def test_mkdir_create_stat_readdir(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/projects"))
    c.do(c.admin.fs_create("/projects/readme"))
    st = c.do(c.admin.fs_stat("/projects/readme"))
    assert st["kind"] == "file"
    assert c.do(c.admin.fs_readdir("/projects")) == ["readme"]
    assert c.do(c.admin.fs_readdir("/")) == ["projects"]


def test_duplicate_create_conflicts(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/dups"))
    c.do(c.admin.fs_create("/dups/f"))
    with pytest.raises(AlreadyExists):
        c.do(c.admin.fs_create("/dups/f"))


def test_unlink_removes(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/trash"))
    c.do(c.admin.fs_create("/trash/victim"))
    c.do(c.admin.fs_unlink("/trash/victim"))
    with pytest.raises(NotFound):
        c.do(c.admin.fs_stat("/trash/victim"))


def test_directories_persist_in_rados(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/durable"))
    c.do(c.admin.fs_create("/durable/file1"))
    c.run(1.0)
    record = c.do(c.admin.rados_omap_get(
        METADATA_POOL, "mdsdir:/durable", "file1"))
    assert record["kind"] == "file"


def test_sequencer_round_trip_mode(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/seqs"))
    c.do(c.admin.fs_create("/seqs/log1", file_type="sequencer"))
    shared = SharedResourceInterface(c.admin)
    c.do(shared.set_lease_policy("round-trip"))
    positions = [c.do(c.admin.seq_next("/seqs/log1")) for _ in range(5)]
    assert positions == [0, 1, 2, 3, 4]


def test_sequencer_cached_mode_is_local_and_fast(cluster):
    c = cluster
    shared = SharedResourceInterface(c.admin)
    c.do(shared.set_lease_policy("best-effort"))
    c.do(c.admin.fs_mkdir("/seqcache"))
    c.do(c.admin.fs_create("/seqcache/log2", file_type="sequencer"))
    t0 = c.sim.now
    first = c.do(c.admin.seq_next("/seqcache/log2"))
    acquire_time = c.sim.now - t0
    t1 = c.sim.now
    rest = [c.do(c.admin.seq_next("/seqcache/log2")) for _ in range(100)]
    local_avg = (c.sim.now - t1) / 100
    assert [first] + rest == list(range(101))
    # Local increments are far cheaper than the initial cap acquisition.
    assert local_avg < acquire_time / 3


def test_two_clients_total_order_under_contention(cluster):
    c = cluster
    shared = SharedResourceInterface(c.admin)
    c.do(shared.set_lease_policy("best-effort"))
    c.do(c.admin.fs_mkdir("/seqcontend"))
    c.do(c.admin.fs_create("/seqcontend/contended", file_type="sequencer"))
    a, b = c.new_client("seq-a"), c.new_client("seq-b")

    def worker(client, count):
        out = []
        for _ in range(count):
            pos = yield from client.seq_next("/seqcontend/contended")
            out.append(pos)
        return out

    pa = a.do(worker(a, 200))
    pb = b.do(worker(b, 200))
    got_a = c.sim.run_until_complete(pa)
    got_b = c.sim.run_until_complete(pb)
    both = sorted(got_a + got_b)
    # Total order: every position issued exactly once, gapless.
    assert both == list(range(400))
    # And the cap genuinely bounced: both made progress.
    assert len(got_a) == 200 and len(got_b) == 200


def test_cap_holder_death_recovers_via_timeout(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/seqorphan"))
    c.do(c.admin.fs_create("/seqorphan/orphaned", file_type="sequencer"))
    dying = c.new_client("doomed")
    survivor = c.new_client("survivor")
    pos0 = c.sim.run_until_complete(dying.do(
        dying.seq_next("/seqorphan/orphaned")))
    assert pos0 == 0
    dying.crash()  # holds the cap; never releases
    proc = survivor.do(survivor.seq_next("/seqorphan/orphaned"))
    got = c.sim.run_until_complete(proc)
    # Positions may repeat after holder death (dirty tail lost) but the
    # grant itself must not deadlock; CORFU-level safety comes from the
    # seal protocol, tested in the zlog suite.
    assert isinstance(got, int)


def test_mds_restart_recovers_namespace_from_rados():
    c = MalacologyCluster.build(osds=3, mdss=1, seed=32)
    c.do(c.admin.fs_mkdir("/a"))
    c.do(c.admin.fs_mkdir("/a/b"))
    c.do(c.admin.fs_create("/a/b/file", file_type="sequencer"))
    c.run(1.0)
    mds = c.mdss[0]
    mds.crash()
    c.run(2.0)
    mds.restart()
    c.run(10.0)
    st = c.do(c.admin.fs_stat("/a/b/file"))
    assert st["file_type"] == "sequencer"
    assert c.do(c.admin.fs_readdir("/a")) == ["b"]
