"""Integration tests for the mgr service on a booted cluster.

Covers the observability acceptance criteria: health flips on an OSD
kill and recovers, mid-scrape crashes degrade to a health detail, the
Prometheus export round-trips, audit records explain migrations, the
structured-error admin path, and — the determinism contract — a seeded
run with the mgr produces the same daemon schedules as one without.
"""

import pytest

from repro.core import LoadBalancingInterface, MalacologyCluster
from repro.mantle import attach_balancers, builtin
from repro.mgr.prometheus import parse_prometheus_text
from repro.sim.failure import FailureInjector
from repro.workloads import SequencerWorkload


@pytest.fixture(scope="module")
def cluster():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=42,
                                mgr=True)
    c.run(6.0)  # a few scrape periods
    return c


# ----------------------------------------------------------------------
# Basic service surface
# ----------------------------------------------------------------------
def test_mgr_boots_and_scrapes(cluster):
    mgr = cluster.mgr
    assert mgr is not None and mgr.booted
    assert mgr.scrape_count >= 2
    report = cluster.health()
    assert report["status"] == "HEALTH_OK"
    assert report["checks"] == {}


def test_status_summarizes_cluster(cluster):
    status = cluster.status()
    assert status["health"]["status"] == "HEALTH_OK"
    assert status["targets"] == 7  # 3 mons + 3 osds + 1 mds
    assert status["unreachable"] == []
    assert status["osdmap"]["up"] == 3
    assert status["mdsmap"]["ranks"] == 1


def test_metrics_export_is_valid_prometheus(cluster):
    text = cluster.daemon_command("mgr0", "metrics.export")
    samples = parse_prometheus_text(text)  # strict: raises if invalid
    daemons = {s.labels["daemon"] for s in samples}
    assert {"mon0", "mon1", "mon2", "osd0", "osd1", "osd2",
            "mds0"} <= daemons
    commits = [s for s in samples
               if s.metric == "repro_counter_total"
               and s.labels["name"] == "paxos.commit"]
    assert commits and all(s.value > 0 for s in commits)
    pending = [s for s in samples
               if s.metric == "repro_gauge"
               and s.labels["name"] == "paxos.pending_txns"]
    assert len(pending) == 3  # the new monitor health gauge, per mon


def test_daemon_command_structured_errors(cluster):
    missing = cluster.daemon_command("osd99", "telemetry.dump")
    assert missing["error"]["code"] == "ENOENT"
    assert "osd99" in missing["error"]["message"]
    unknown = cluster.daemon_command("osd0", "no.such.command")
    assert "error" in unknown
    assert "no.such.command" in unknown["error"]["message"]
    # The happy path is unwrapped.
    dump = cluster.daemon_command("osd0", "telemetry.dump")
    assert "counters" in dump


# ----------------------------------------------------------------------
# OSD kill -> HEALTH_WARN naming the OSD -> recovery  (fresh cluster:
# these mutate daemon state)
# ----------------------------------------------------------------------
def test_osd_kill_flips_health_and_recovery_restores_it():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=43,
                                mgr=True)
    c.run(6.0)
    assert c.health()["status"] == "HEALTH_OK"

    injector = FailureInjector(c.sim, c.net)
    t0 = c.sim.now
    injector.crash_at(t0 + 1.0, c.osds[1])
    c.run(20.0)  # peers report it, osdmap updates, mgr scrapes

    report = c.health()
    assert report["status"] == "HEALTH_WARN"
    osd_down = report["checks"].get("OSD_DOWN")
    assert osd_down is not None, report
    assert "osd1" in osd_down["detail"]["osds"]
    assert "osd1" in osd_down["summary"]
    # The scrape itself also could not reach the corpse.
    unreachable = report["checks"].get("DAEMON_UNREACHABLE")
    assert unreachable is not None
    assert "osd1" in unreachable["detail"]["daemons"]

    # The transition was logged centrally, naming the OSD.
    leader = c.leader_monitor()
    mgr_lines = [e for e in leader.store.cluster_log if e.who == "mgr0"]
    assert any("OSD_DOWN" in e.message and "osd1" in e.message
               for e in mgr_lines)

    injector.restart_at(c.sim.now + 1.0, c.osds[1])
    c.run(25.0)  # boot, mon marks it up, checks clear
    report = c.health()
    assert report["status"] == "HEALTH_OK", report
    # Clears are logged too.
    leader = c.leader_monitor()
    mgr_lines = [e for e in leader.store.cluster_log if e.who == "mgr0"]
    assert any("cleared" in e.message for e in mgr_lines)


def test_mid_scrape_crash_does_not_kill_the_scrape_loop():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=44,
                                mgr=True)
    c.run(5.0)
    before = c.mgr.scrape_count
    c.osds[2].crash()
    c.run(10.0)
    # The loop kept ticking through the failures...
    assert c.mgr.scrape_count >= before + 3
    # ... and flagged the unreachable daemon instead of raising.
    assert "osd2" in c.mgr.last_sample.failed
    assert c.mgr.perf.get("mgr.scrape.failed") > 0
    report = c.health()
    assert report["checks"]["DAEMON_UNREACHABLE"]["status"] \
        == "HEALTH_WARN"


# ----------------------------------------------------------------------
# Mantle audit trail
# ----------------------------------------------------------------------
def test_audit_trail_explains_every_migration():
    c = MalacologyCluster.build(osds=6, mdss=2, mons=3, seed=45,
                                mgr=True)
    attach_balancers(c)
    c.do(LoadBalancingInterface(c.admin).publish_policy(
        "audit-under-test", builtin.MANTLE_SEQUENCER))
    workload = SequencerWorkload(c, num_sequencers=2, clients_per_seq=4)
    workload.setup(lease_mode="round-trip")
    workload.start()
    c.run(80.0)
    workload.stop()
    c.run(5.0)  # final scrape collects the last records

    migrations = c.daemon_command("mgr0", "audit.dump",
                                  {"migrations_only": True})
    assert migrations, "balanced run should have migrated at least once"
    for rec in migrations:
        # Every migration carries the full explanation: who decided,
        # under which policy, seeing what loads, moving what, at what
        # measured cost.
        assert rec["policy"] == "audit-under-test"
        assert rec["status"] == "decided"
        assert rec["decision"]["when"] is True
        assert rec["load"], "load vector must be recorded"
        assert all("load" in row for row in rec["load"])
        assert rec["moves"]
        assert rec["counter_deltas"].get("migrate.export", 0) > 0
        assert rec["mds"].startswith("mds")

    # Each move in the trail corresponds to a real exported subtree.
    full = c.daemon_command("mgr0", "audit.dump")
    assert len(full) >= len(migrations)
    decided = [r for r in full if r["status"] == "decided"]
    assert len(decided) > len(migrations)  # most ticks decide "stay"


# ----------------------------------------------------------------------
# Determinism: observation must not perturb the experiment
# ----------------------------------------------------------------------
def _non_mgr_tape(mgr):
    c = MalacologyCluster.build(osds=2, mdss=1, mons=3, seed=46,
                                mgr=mgr)
    tape = []
    orig = c.net.send
    def spy(src, dst, msg):
        if not (src.startswith("mgr") or dst.startswith("mgr")):
            tape.append((c.sim.now, src, dst,
                         getattr(msg, "method", None)
                         or getattr(msg, "kind", None)))
        return orig(src, dst, msg)
    c.net.send = spy
    client = c.new_client("load")

    def work():
        yield from client.fs_mkdir("/d")
        for i in range(25):
            yield from client.fs_create(f"/d/f{i}")
    c.sim.run_until_complete(client.do(work()))
    c.run(10.0)
    return tape


def test_mgr_does_not_change_daemon_schedules():
    without = _non_mgr_tape(mgr=False)
    with_mgr = _non_mgr_tape(mgr=True)
    assert len(without) > 100  # the workload actually exercised the net
    assert with_mgr == without
