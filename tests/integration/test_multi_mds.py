"""Integration tests: multi-MDS namespace distribution."""

import pytest

from repro.core import MalacologyCluster
from repro.errors import NotFound


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=4, mdss=3, seed=81)


def migrate(cluster, path, target):
    src_rank = cluster.mons[0].store.mdsmap.owner_of(path)
    src = cluster.mds_of_rank(src_rank)
    cluster.sim.run_until_complete(
        src.spawn(src.migrate_subtree(path, target)))


def test_namespace_spans_ranks_transparently(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/tenant-a"))
    c.do(c.admin.fs_mkdir("/tenant-b"))
    migrate(c, "/tenant-a", 1)
    migrate(c, "/tenant-b", 2)
    # Clients create/list through whichever rank owns each subtree.
    c.do(c.admin.fs_create("/tenant-a/f1"))
    c.do(c.admin.fs_create("/tenant-b/f2"))
    assert c.do(c.admin.fs_readdir("/tenant-a")) == ["f1"]
    assert c.do(c.admin.fs_readdir("/tenant-b")) == ["f2"]
    assert c.do(c.admin.fs_readdir("/")) == ["tenant-a", "tenant-b"]
    # The data genuinely lives on different ranks.
    assert c.mds_of_rank(1).ns.has("/tenant-a/f1")
    assert c.mds_of_rank(2).ns.has("/tenant-b/f2")
    assert not c.mds_of_rank(0).ns.has("/tenant-a/f1")


def test_nested_migration_most_specific_owner_wins(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/outer"))
    c.do(c.admin.fs_mkdir("/outer/inner"))
    c.do(c.admin.fs_create("/outer/inner/leaf"))
    migrate(c, "/outer", 1)
    migrate(c, "/outer/inner", 2)
    m = c.mons[0].store.mdsmap
    assert m.owner_of("/outer") == 1
    assert m.owner_of("/outer/inner/leaf") == 2
    # Ops route correctly at every level.
    c.do(c.admin.fs_create("/outer/file-at-1"))
    c.do(c.admin.fs_create("/outer/inner/file-at-2"))
    assert c.mds_of_rank(1).ns.has("/outer/file-at-1")
    assert c.mds_of_rank(2).ns.has("/outer/inner/file-at-2")


def test_migration_round_trip_returns_home(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/boomerang"))
    c.do(c.admin.fs_create("/boomerang/f", file_type="sequencer"))
    for _ in range(3):
        c.do(c.admin.seq_next("/boomerang/f"))
    migrate(c, "/boomerang", 2)
    migrate(c, "/boomerang", 0)
    assert c.mons[0].store.mdsmap.owner_of("/boomerang") == 0
    assert c.mds_of_rank(0).ns.has("/boomerang/f")
    # State survived two hops.
    assert c.do(c.admin.seq_next("/boomerang/f")) == 3


def test_unlink_after_migration_updates_rados(cluster):
    c = cluster
    c.do(c.admin.fs_mkdir("/ephemeral"))
    c.do(c.admin.fs_create("/ephemeral/gone"))
    migrate(c, "/ephemeral", 1)
    c.do(c.admin.fs_unlink("/ephemeral/gone"))
    with pytest.raises(NotFound):
        c.do(c.admin.fs_stat("/ephemeral/gone"))
    with pytest.raises(NotFound):
        c.do(c.admin.rados_omap_get("metadata", "mdsdir:/ephemeral",
                                    "gone"))


def test_migrated_subtree_survives_new_owner_restart():
    c = MalacologyCluster.build(osds=4, mdss=2, seed=82)
    c.do(c.admin.fs_mkdir("/persistent"))
    c.do(c.admin.fs_create("/persistent/f", file_type="sequencer"))
    src = c.mds_of_rank(0)
    c.sim.run_until_complete(src.spawn(
        src.migrate_subtree("/persistent", 1)))
    c.run(1.0)
    owner = c.mds_of_rank(1)
    owner.crash()
    c.run(2.0)
    owner.restart()
    c.run(10.0)
    # Rank 1 reloaded its subtree from RADOS.
    st = c.do(c.admin.fs_stat("/persistent/f"))
    assert st["file_type"] == "sequencer"
