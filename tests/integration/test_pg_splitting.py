"""Integration test: placement-group splitting (paper section 4.4)."""

from repro.rados.placement import locate
from repro.testing import build_rados_cluster


def test_pg_split_reshards_and_preserves_data():
    c = build_rados_cluster(osd_count=4, seed=95,
                            pools={"data": {"size": 2, "pg_num": 4}})
    payloads = {f"obj-{i}": f"payload-{i}".encode() for i in range(24)}
    for oid, data in payloads.items():
        c.do(c.admin.rados_write_full("data", oid, data))

    # Quadruple the PG count; the OSDs re-shard in the background.
    c.do(c.admin.mon_submit([{
        "op": "map_update", "kind": "osd",
        "actions": [{"action": "set_pool_pg_num", "name": "data",
                     "pg_num": 16}]}]))
    c.run(15.0)

    # Every object is still readable through the new layout...
    for oid, data in payloads.items():
        assert c.do(c.admin.rados_read("data", oid)) == data
    # ... and physically lives where the new map says it should.
    osdmap = c.mons[0].store.osdmap
    assert osdmap.pool("data")["pg_num"] == 16
    by_name = {o.name: o for o in c.osds}
    for oid in payloads:
        pgid, acting = locate(osdmap, "data", oid)
        for member in acting:
            assert oid in by_name[member].pgs.get(("data", pgid), {}), (
                f"{oid} missing from {member} pg {pgid}")
    # Old-layout PGs were drained (no object sits in a stale PG).
    for osd in c.osds:
        for (pool, pgid), objects in osd.pgs.items():
            for oid in objects:
                from repro.rados.placement import pg_of

                assert pg_of(oid, 16) == pgid
