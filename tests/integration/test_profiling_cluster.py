"""Integration: profiling on a live cluster.

The spine guarantee is schedule identity — the profiler's contract is
the same as the sanitizers', the mgr's, and the changelog's: observing
the cluster must not change it.  A profiled run's full network tape
(every daemon, every message, timestamps included) must be
byte-identical to an unprofiled run of the same seed.
"""

import json

from repro.core import MalacologyCluster
from repro.mgr.prometheus import parse_prometheus_text


def _full_tape(profile):
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=4242,
                                profile=profile)
    tape = []
    orig = c.net.send

    def spy(src, dst, msg):
        tape.append((round(c.sim.now, 9), src, dst,
                     getattr(msg, "method", None)
                     or getattr(msg, "kind", None)))
        return orig(src, dst, msg)

    c.net.send = spy
    client = c.new_client("load")

    def work():
        yield from client.fs_mkdir("/d")
        for i in range(15):
            yield from client.fs_create(f"/d/f{i}")
        for i in range(10):
            yield from client.rados_write_full("data", f"obj{i}",
                                               bytes([i]) * 64)
        for i in range(10):
            got = yield from client.rados_read("data", f"obj{i}")
            assert got == bytes([i]) * 64

    c.sim.run_until_complete(client.do(work()))
    c.run(10.0)
    return tape, c


def test_profiler_does_not_change_daemon_schedules():
    without, _ = _full_tape(profile=False)
    with_prof, profiled = _full_tape(profile=True)
    assert len(without) > 200  # the workload exercised the cluster
    assert with_prof == without
    # ... while the profiler actually observed the run.
    prof = profiled.sim.profiler
    assert prof.events_dispatched > len(without)
    assert prof.handler_stats()
    assert profiled.sim.wall_profiler.total_ns() > 0


def test_profile_admin_commands_on_and_off():
    off = MalacologyCluster.build(osds=2, mdss=1, seed=9, profile=False)
    status = off.profile_status()
    assert status == {"daemon": "admin", "enabled": False,
                      "wall_enabled": False}
    assert off.profile_dump()["enabled"] is False
    # Every daemon answers, not just the admin client.
    assert off.mons[0].admin_command("profile.status")["enabled"] is False

    on, cluster = _full_tape(profile=True)
    del on
    status = cluster.profile_status()
    assert status["enabled"] and status["wall_enabled"]
    assert status["kernel"]["events_dispatched"] > 0
    assert status["kernel"]["queue_hwm"] > 0
    # Daemon-scoped dump carries only that daemon's handlers.
    mds_dump = cluster.mdss[0].admin_command("profile.dump")
    assert mds_dump["handler_stats"]
    assert all(k.startswith("mds0:") for k in mds_dump["handler_stats"])
    # Cluster scope widens to every daemon, the wall plane, and the
    # flamegraph dump.
    full = cluster.profile_dump(collapsed=True)
    daemons = {k.split(":")[0] for k in full["handler_stats"]}
    assert {"mds0", "mon0"} <= daemons
    assert full["top_sim_time"]
    assert full["wall"]["hotspots"]
    assert full["collapsed_stacks"].startswith("kernel;")
    # In-band RPC surface answers too.
    fut = cluster.admin.call("mds0", "profile.status")
    got = cluster.sim.run_until_complete(fut)
    assert got["daemon"] == "mds0" and got["enabled"]


def test_prometheus_export_carries_kernel_and_profile_gauges():
    c = MalacologyCluster.build(osds=2, mdss=1, seed=11, profile=True,
                                mgr=True)
    client = c.new_client("load")

    def work():
        yield from client.fs_mkdir("/p")
        for i in range(5):
            yield from client.fs_create(f"/p/f{i}")

    c.sim.run_until_complete(client.do(work()))
    c.run(8.0)  # several scrape periods
    text = c.mgr.metrics_export()
    samples = parse_prometheus_text(text)
    by_name = {}
    for s in samples:
        by_name.setdefault((s.labels.get("daemon"),
                            s.labels.get("name")), s.value)
    assert by_name[("kernel", "kernel.events")] > 0
    assert by_name[("kernel", "kernel.queue_hwm")] > 0
    assert ("kernel", "kernel.event_rate_sim") in by_name
    assert ("kernel", "kernel.ready_hwm") in by_name
    # Per-daemon handler gauges rode the mgr's ordinary scrapes.
    assert by_name[("mds0", "profile.handler_events")] > 0
    assert by_name[("mds0", "profile.handler_sim_time")] > 0
    # An unprofiled mgr cluster exports no kernel pseudo-target.
    off = MalacologyCluster.build(osds=2, mdss=1, seed=11, mgr=True,
                                  profile=False)
    off.run(8.0)
    off_samples = parse_prometheus_text(off.mgr.metrics_export())
    assert not any(s.labels.get("daemon") == "kernel"
                   for s in off_samples)


def test_trace_export_from_live_cluster(tmp_path):
    c = MalacologyCluster.build(osds=2, mdss=1, seed=5, profile=True)
    client = c.new_client("app")

    def op():
        yield from client.fs_mkdir("/t")
        yield from client.fs_create("/t/file")

    c.sim.run_until_complete(
        client.do(client.traced(op(), "fs.setup"), name="traced"))
    c.run(2.0)
    path = c.write_trace(str(tmp_path / "trace.json"))
    with open(path) as fh:
        doc = json.load(fh)
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any(s["name"] == "fs.setup" for s in spans)
    assert any(s["name"] == "mds_req" for s in spans)
    assert counters, "kernel queue-depth counter track missing"
    assert {m["args"]["name"] for m in metas} >= {"kernel", "app", "mds0"}
    # Spans are causally parented into one tree per trace.
    roots = [s for s in spans if "parent_id" not in s["args"]]
    assert roots and all(s["args"]["trace_id"] == roots[0]["args"]["trace_id"]
                         for s in spans)
