"""Integration tests: full RADOS cluster (monitors + OSDs + clients)."""

import pytest

from repro.errors import AlreadyExists, NotFound, StaleEpoch
from repro.rados.placement import locate
from repro.sim import FailureInjector
from repro.testing import build_rados_cluster

COUNTER_SOURCE = """
def inc(ctx, args):
    n = ctx.xattr_get("count", 0) + args.get("by", 1)
    ctx.xattr_set("count", n)
    return {"count": n}

def get(ctx, args):
    return {"count": ctx.xattr_get("count", 0)}

METHODS = {"inc": inc, "get": get}
"""


@pytest.fixture(scope="module")
def cluster():
    return build_rados_cluster(osd_count=4, seed=11)


def test_write_read_round_trip(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("data", "greeting", b"hello world"))
    assert c.do(c.admin.rados_read("data", "greeting")) == b"hello world"


def test_append_returns_offsets(cluster):
    c = cluster
    assert c.do(c.admin.rados_append("data", "appendee", b"aaaa")) == 0
    assert c.do(c.admin.rados_append("data", "appendee", b"bb")) == 4
    assert c.do(c.admin.rados_read("data", "appendee")) == b"aaaabb"


def test_create_exclusive_conflicts(cluster):
    c = cluster
    c.do(c.admin.rados_create("data", "unique"))
    with pytest.raises(AlreadyExists):
        c.do(c.admin.rados_create("data", "unique"))


def test_read_missing_object_raises(cluster):
    with pytest.raises(NotFound):
        cluster.do(cluster.admin.rados_read("data", "missing-object"))


def test_omap_round_trip(cluster):
    c = cluster
    c.do(c.admin.rados_omap_set("data", "kv", "color", "teal"))
    assert c.do(c.admin.rados_omap_get("data", "kv", "color")) == "teal"


def test_op_list_is_atomic_on_failure(cluster):
    c = cluster
    ops = [
        {"op": "write_full", "data": b"should-not-land"},
        {"op": "omap_get", "key": "no-such-key"},  # fails
    ]
    with pytest.raises(NotFound):
        c.do(c.admin.rados_op("data", "atomic-check", ops))
    with pytest.raises(NotFound):
        c.do(c.admin.rados_read("data", "atomic-check"))


def test_writes_are_replicated_to_acting_set(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("data", "replicated", b"x" * 100))
    c.run(2.0)
    osdmap = c.mons[0].store.osdmap
    pgid, acting = locate(osdmap, "data", "replicated")
    assert len(acting) == 2
    holders = [o for o in c.osds
               if ("data", pgid) in o.pgs and "replicated" in o.pgs[
                   ("data", pgid)]]
    assert sorted(o.name for o in holders) == sorted(acting)
    datas = {bytes(o.pgs[("data", pgid)]["replicated"].data)
             for o in holders}
    assert datas == {b"x" * 100}


def test_exec_bundled_class(cluster):
    c = cluster
    out = c.do(c.admin.rados_exec("data", "counter-obj", "numops", "add",
                                  {"key": "hits", "value": 3}))
    assert out == {"value": 3}


def test_dynamic_interface_install_and_exec(cluster):
    c = cluster
    c.do(c.admin.rados_install_interface("counter", 1, COUNTER_SOURCE,
                                         category="metadata"))
    c.run(3.0)  # gossip + install delay
    assert all(o.registry.has("counter") for o in c.osds)
    out = c.do(c.admin.rados_exec("data", "dyn-obj", "counter", "inc",
                                  {"by": 7}))
    assert out == {"count": 7}


def test_dynamic_interface_upgrade_without_restart(cluster):
    c = cluster
    v2 = COUNTER_SOURCE.replace('args.get("by", 1)', 'args.get("by", 100)')
    c.do(c.admin.rados_install_interface("counter", 2, v2,
                                         category="metadata"))
    c.run(3.0)
    assert all(o.registry.version_of("counter") == 2 for o in c.osds)
    out = c.do(c.admin.rados_exec("data", "dyn-obj2", "counter", "inc", {}))
    assert out == {"count": 100}


def test_zlog_class_over_the_wire_epoch_fencing(cluster):
    c = cluster
    c.do(c.admin.rados_exec("data", "log-obj", "zlog", "write",
                            {"epoch": 1, "pos": 0, "data": "e0"}))
    sealed = c.do(c.admin.rados_exec("data", "log-obj", "zlog", "seal",
                                     {"epoch": 2}))
    assert sealed == {"max_pos": 0}
    with pytest.raises(StaleEpoch):
        c.do(c.admin.rados_exec("data", "log-obj", "zlog", "write",
                                {"epoch": 1, "pos": 1, "data": "stale"}))
