"""Failure-injection tests: OSD loss, recovery, scrub repair."""

import pytest

from repro.rados.placement import acting_set, locate
from repro.sim import FailureInjector
from repro.testing import build_rados_cluster


def test_acked_write_survives_primary_failure():
    c = build_rados_cluster(osd_count=4, seed=21)
    c.do(c.admin.rados_write_full("data", "precious", b"survive-me"))
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", "precious")
    primary = next(o for o in c.osds if o.name == acting[0])
    primary.crash()
    # Peers detect the failure, report it, map churns, replica promotes.
    c.run(20.0)
    assert c.do(c.admin.rados_read("data", "precious")) == b"survive-me"


def test_recovery_restores_replication_factor():
    c = build_rados_cluster(osd_count=4, seed=22)
    c.do(c.admin.rados_write_full("data", "re-replicate", b"abc"))
    osdmap = c.mons[0].store.osdmap
    pgid, acting = locate(osdmap, "data", "re-replicate")
    victim = next(o for o in c.osds if o.name == acting[1])
    victim.crash()
    c.run(30.0)
    holders = [o for o in c.osds if o.alive
               and "re-replicate" in o.pgs.get(("data", pgid), {})]
    # A new replica was backfilled: replication factor is 2 again.
    assert len(holders) == 2
    new_map = c.mons[0].store.osdmap
    assert sorted(o.name for o in holders) == sorted(
        acting_set(new_map, "data", pgid))


def test_restarted_osd_rejoins_and_serves():
    c = build_rados_cluster(osd_count=3, seed=23)
    c.do(c.admin.rados_write_full("data", "obj-a", b"a"))
    victim = c.osds[0]
    victim.crash()
    c.run(15.0)
    victim.restart()
    c.run(15.0)
    assert c.mons[0].store.osdmap.is_up(victim.name)
    assert c.do(c.admin.rados_read("data", "obj-a")) == b"a"


def test_scrub_repairs_silent_corruption():
    c = build_rados_cluster(osd_count=3, seed=24)
    c.do(c.admin.rados_write_full("data", "scrubbed", b"clean-data"))
    c.run(1.0)
    osdmap = c.mons[0].store.osdmap
    pgid, acting = locate(osdmap, "data", "scrubbed")
    replica = next(o for o in c.osds if o.name == acting[1])
    # Corrupt the replica silently (bit rot).
    replica.pgs[("data", pgid)]["scrubbed"].data[0:5] = b"dirty"
    # Scrub runs every SCRUB_INTERVAL (30 s); give it two cycles since it
    # round-robins one PG per tick.
    deadline = c.sim.now + 30.0 * (len(replica.pgs) + len(c.osds[0].pgs) + 2)
    while c.sim.now < deadline:
        c.run(10.0)
        if bytes(replica.pgs[("data", pgid)]["scrubbed"].data) == \
                b"clean-data":
            break
    assert bytes(
        replica.pgs[("data", pgid)]["scrubbed"].data) == b"clean-data"


# Every store backend profile, as pool configs.  The whole module runs
# sanitized (see conftest), so these also prove the recovery protocol
# stays violation-free no matter which backend serves the PGs.
BACKEND_POOLS = {
    "memstore": {"backend": "memstore"},
    "logstructured": {"backend": "logstructured"},
    "coldstore": {"backend": {"profile": "coldstore", "k": 2, "m": 1}},
    "cached": {"backend": "coldstore",
               "cache": {"capacity": 8, "promote_reads": 1}},
}


@pytest.mark.parametrize("profile", sorted(BACKEND_POOLS))
def test_acked_write_survives_primary_failure_on_every_backend(profile):
    cfg = {"size": 2, "pg_num": 16, **BACKEND_POOLS[profile]}
    c = build_rados_cluster(osd_count=4, seed=26,
                            pools={"data": cfg})
    payload = b"survive-" + profile.encode()
    c.do(c.admin.rados_write_full("data", "precious", payload))
    c.run(2.0)  # let flusher ticks freeze/write-back before the crash
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", "precious")
    victim = next(o for o in c.osds if o.name == acting[0])
    victim.crash()
    c.run(20.0)
    assert c.do(c.admin.rados_read("data", "precious")) == payload
    victim.restart()
    c.run(15.0)
    assert c.mons[0].store.osdmap.is_up(victim.name)
    assert c.do(c.admin.rados_read("data", "precious")) == payload


@pytest.mark.parametrize("profile", sorted(BACKEND_POOLS))
def test_recovery_restores_replication_on_every_backend(profile):
    cfg = {"size": 2, "pg_num": 16, **BACKEND_POOLS[profile]}
    c = build_rados_cluster(osd_count=4, seed=27,
                            pools={"data": cfg})
    c.do(c.admin.rados_write_full("data", "re-replicate", b"abc"))
    c.run(2.0)
    osdmap = c.mons[0].store.osdmap
    pgid, acting = locate(osdmap, "data", "re-replicate")
    victim = next(o for o in c.osds if o.name == acting[1])
    victim.crash()
    c.run(30.0)
    # Backfill pushed through the store interface: the new replica's
    # backend holds the object regardless of profile.
    holders = [o for o in c.osds if o.alive
               and "re-replicate" in o.pgs.get(("data", pgid), {})]
    assert len(holders) == 2
    new_map = c.mons[0].store.osdmap
    assert sorted(o.name for o in holders) == sorted(
        acting_set(new_map, "data", pgid))


def test_monitor_failure_does_not_block_osd_io():
    c = build_rados_cluster(osd_count=3, seed=25)
    leader = next(m for m in c.mons if m.is_leader)
    c.do(c.admin.rados_write_full("data", "before", b"1"))
    leader.crash()
    c.run(5.0)
    # Established clients keep doing I/O from cached maps even while the
    # monitor quorum re-elects.
    c.do(c.admin.rados_write_full("data", "during", b"2"))
    assert c.do(c.admin.rados_read("data", "during")) == b"2"
