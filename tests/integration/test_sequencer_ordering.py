"""Integration tests: sequencer total order under every lease policy.

The core CORFU requirement that the Shared Resource machinery must
never break: positions handed out by the sequencer are unique and
gapless, no matter which policy governs capability movement or how
messages reorder (and even under injected message loss, where the
revoke-deadline reclaim path kicks in).
"""

import pytest

from repro.core import MalacologyCluster, SharedResourceInterface
from repro.sim import FailureInjector

POLICIES = [
    ("round-trip", {}),
    ("best-effort", {}),
    ("delay", {"min_hold": 0.05}),
    ("quota", {"quota": 25, "max_hold": 0.25}),
]


def drive(cluster, path, clients, per_client):
    def worker(client):
        out = []
        for _ in range(per_client):
            pos = yield from client.seq_next(path)
            out.append(pos)
        return out

    procs = [cl.do(worker(cl)) for cl in clients]
    return [cluster.sim.run_until_complete(p) for p in procs]


@pytest.mark.parametrize("mode,kwargs", POLICIES)
def test_total_order_under_policy(mode, kwargs):
    c = MalacologyCluster.build(osds=3, mdss=1, seed=hash(mode) % 1000)
    c.do(SharedResourceInterface(c.admin).set_lease_policy(mode,
                                                           **kwargs))
    c.do(c.admin.fs_mkdir("/ord"))
    c.do(c.admin.fs_create("/ord/seq", file_type="sequencer"))
    clients = [c.new_client(f"cl{i}") for i in range(3)]
    results = drive(c, "/ord/seq", clients, 80)
    everything = sorted(p for r in results for p in r)
    assert everything == list(range(240))
    # Per-client sequences are strictly increasing (session order).
    for r in results:
        assert r == sorted(r)


def test_order_survives_background_message_loss():
    c = MalacologyCluster.build(osds=3, mdss=1, seed=99)
    c.do(SharedResourceInterface(c.admin).set_lease_policy(
        "quota", quota=20, max_hold=0.25))
    c.do(c.admin.fs_mkdir("/lossy"))
    c.do(c.admin.fs_create("/lossy/seq", file_type="sequencer"))
    injector = FailureInjector(c.sim, c.net)
    injector.set_loss_everywhere(0.01)  # 1% background loss
    clients = [c.new_client(f"lossy{i}") for i in range(2)]
    results = drive(c, "/lossy/seq", clients, 60)
    everything = [p for r in results for p in r]
    # Loss may force revoke-deadline reclaims, which can re-issue lost
    # *unacknowledged* tail state — but a position must never be handed
    # to two clients (that is what the write-once storage would catch).
    assert len(set(everything)) == len(everything)
    injector.clear_loss()


def test_many_sequencers_are_independent():
    c = MalacologyCluster.build(osds=3, mdss=1, seed=101)
    c.do(SharedResourceInterface(c.admin).set_lease_policy("best-effort"))
    c.do(c.admin.fs_mkdir("/multi"))
    for i in range(3):
        c.do(c.admin.fs_create(f"/multi/s{i}", file_type="sequencer"))
    client = c.new_client("multi")

    def worker():
        out = {i: [] for i in range(3)}
        for round_no in range(10):
            for i in range(3):
                pos = yield from client.seq_next(f"/multi/s{i}")
                out[i].append(pos)
        return out

    result = c.sim.run_until_complete(client.do(worker()))
    for i in range(3):
        assert result[i] == list(range(10))  # each log counts alone
