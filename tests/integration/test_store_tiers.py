"""Integration tests: pluggable store backends, tiered pools, health.

The two spine guarantees of the store refactor:

* **schedule identity** — a default (all-MemStore) cluster replays the
  exact pre-refactor event schedule, pinned here against a golden tape
  digest captured at the commit immediately before the refactor;
* **durability everywhere** — every backend profile survives OSD
  crash, restart, and failover, because recovery/rebalance/scrub all
  route through the ObjectStore interface.
"""

import hashlib

import pytest

from repro.core import MalacologyCluster
from repro.mgr.health import (
    CacheTierFullCheck,
    ClusterSample,
    CompactionStalledCheck,
    sample_cluster,
)
from repro.mgr.prometheus import parse_prometheus_text
from repro.rados.placement import locate

# Captured from the commit immediately before the store refactor: the
# (send count, sha256) of the full network tape for the workload below
# on a default cluster.  Any new event, reordering, or payload change
# in the default configuration breaks this digest.
GOLDEN_SENDS = 354
GOLDEN_DIGEST = \
    "b59f564d1bcedcec8731e584b090c0437d8ced60cb7287b888cd6edae8bc9423"


def test_default_memstore_schedule_matches_prerefactor_tape():
    c = MalacologyCluster.build(osds=3, mdss=1, mons=3, seed=1234)
    tape = []
    orig = c.net.send

    def spy(src, dst, msg):
        tape.append((round(c.sim.now, 9), src, dst,
                     getattr(msg, "method", None)
                     or getattr(msg, "kind", None)))
        return orig(src, dst, msg)

    c.net.send = spy
    client = c.new_client("load")

    def work():
        yield from client.fs_mkdir("/d")
        for i in range(10):
            yield from client.fs_create(f"/d/f{i}")
        for i in range(12):
            yield from client.rados_write_full("data", f"obj{i}",
                                               bytes([i]) * 64)
        for i in range(12):
            got = yield from client.rados_read("data", f"obj{i}")
            assert got == bytes([i]) * 64
        for i in range(6):
            yield from client.rados_append("data", "log", b"x" * 16)
        yield from client.rados_omap_set("data", "obj0", "k", {"v": 1})

    c.sim.run_until_complete(client.do(work()))
    c.run(10.0)
    h = hashlib.sha256()
    for entry in tape:
        h.update(repr(entry).encode())
    assert (len(tape), h.hexdigest()) == (GOLDEN_SENDS, GOLDEN_DIGEST)


# ----------------------------------------------------------------------
# Tiered pools end to end
# ----------------------------------------------------------------------
TIERED_POOLS = {
    "fast": {"size": 2, "pg_num": 16, "backend": "memstore"},
    "logged": {"size": 2, "pg_num": 16, "backend": "logstructured"},
    "cold": {"size": 2, "pg_num": 16,
             "backend": {"profile": "coldstore", "k": 2, "m": 1}},
    "cachedcold": {"size": 2, "pg_num": 16, "backend": "coldstore",
                   "cache": {"capacity": 8, "promote_reads": 1}},
}


def build_tiered(seed=7, extra_pools=None, **kw):
    pools = dict(MalacologyCluster.DEFAULT_POOLS)
    pools.update(extra_pools if extra_pools is not None else TIERED_POOLS)
    return MalacologyCluster.build(osds=3, mdss=1, seed=seed,
                                   pools=pools, **kw)


@pytest.fixture(scope="module")
def tiered():
    c = build_tiered()
    def work():
        for pool in sorted(TIERED_POOLS):
            for i in range(6):
                yield from c.admin.rados_write_full(
                    pool, f"{pool}-obj{i}", f"{pool}:{i}".encode() * 8)
    c.do(work())
    c.run(5.0)  # flusher/compaction ticks, write-back, replication
    return c


def test_all_backends_roundtrip_reads(tiered):
    for pool in sorted(TIERED_POOLS):
        for i in range(6):
            got = tiered.do(tiered.admin.rados_read(pool, f"{pool}-obj{i}"))
            assert got == f"{pool}:{i}".encode() * 8


def test_store_status_reports_profiles(tiered):
    status = tiered.store_status()
    profiles = set()
    for osd_report in status.values():
        profiles.update(osd_report["profiles"])
        for pg, st in osd_report["pgs"].items():
            if pg.startswith("cachedcold/"):
                assert st["profile"] == "cache"
                assert st["base"]["profile"] == "coldstore"
    assert {"memstore", "logstructured", "coldstore", "cache"} <= profiles
    # Pool filter narrows to one pool's PGs.
    only_cold = tiered.store_status(pool="cold")
    for osd_report in only_cold.values():
        assert all(pg.startswith("cold/") for pg in osd_report["pgs"])
        for st in osd_report["pgs"].values():
            assert st["profile"] == "coldstore"
            assert st["k"] == 2 and st["m"] == 1


def test_background_maintenance_ran(tiered):
    """The lazy store ticker started and did real work: cold batches
    encoded and cache write-backs happened somewhere in the cluster."""
    totals = {}
    for osd in tiered.osds:
        for name, val in osd.perf.dump()["counters"].items():
            if name.startswith("store."):
                totals[name] = totals.get(name, 0) + val
    assert totals.get("store.coldstore.encode_batch", 0) > 0
    assert totals.get("store.cache.writeback", 0) > 0
    assert totals.get("store.cache.flush", 0) > 0


def test_backend_data_survives_crash_failover_and_restart():
    c = build_tiered(seed=11)
    def work():
        for pool in sorted(TIERED_POOLS):
            yield from c.admin.rados_write_full(
                pool, "precious", b"keep-" + pool.encode())
    c.do(work())
    c.run(3.0)  # replicate + let flusher ticks freeze/writeback
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "cold", "precious")
    victim = next(o for o in c.osds if o.name == acting[0])
    victim.crash()
    c.run(20.0)  # failure report, map churn, replica promotion
    for pool in sorted(TIERED_POOLS):
        got = c.do(c.admin.rados_read(pool, "precious"))
        assert got == b"keep-" + pool.encode()
    victim.restart()
    c.run(20.0)
    assert c.mons[0].store.osdmap.is_up(victim.name)
    for pool in sorted(TIERED_POOLS):
        got = c.do(c.admin.rados_read(pool, "precious"))
        assert got == b"keep-" + pool.encode()


def test_pg_split_preserves_every_backend():
    c = build_tiered(seed=13)
    def work():
        for pool in sorted(TIERED_POOLS):
            for i in range(8):
                yield from c.admin.rados_write_full(
                    pool, f"s{i}", f"{pool}/{i}".encode())
    c.do(work())
    c.run(3.0)
    def grow():
        for pool in sorted(TIERED_POOLS):
            yield from c.admin.mon_submit([{
                "op": "map_update", "kind": "osd",
                "actions": [{"action": "set_pool_pg_num",
                             "name": pool, "pg_num": 32}]}])
    c.do(grow())
    c.run(20.0)  # re-shard + rebalance pushes converge
    for pool in sorted(TIERED_POOLS):
        for i in range(8):
            got = c.do(c.admin.rados_read(pool, f"s{i}"))
            assert got == f"{pool}/{i}".encode()


# ----------------------------------------------------------------------
# Health checks and telemetry surface
# ----------------------------------------------------------------------
def test_cache_tier_full_fires_then_clears():
    # One PG so every object lands in the same small cache.
    c = build_tiered(seed=17, extra_pools={
        "squeezed": {"size": 2, "pg_num": 1, "backend": "memstore",
                     "cache": {"capacity": 4, "promote_reads": 2}}})
    def work():
        for i in range(12):
            yield from c.admin.rados_write_full("squeezed", f"o{i}", b"x")
    c.do(work())
    # Sampled before the next flusher tick: 12 dirty entries pinned in
    # a capacity-4 cache.
    report = c.health()
    full = report["checks"].get("CACHE_TIER_FULL")
    assert full is not None and full["status"] == "HEALTH_WARN"
    assert any(d["utilization"] > 1.0
               for d in full["detail"]["osds"].values())
    c.run(3.0)  # write-back + clean eviction on the store ticker
    assert "CACHE_TIER_FULL" not in c.health()["checks"]


def test_compaction_stalled_check_on_fabricated_series():
    check = CompactionStalledCheck(min_ratio=0.5, window=6.0,
                                   min_scrapes=3)
    sample = ClusterSample(time=10.0)
    sample.roles["osd0"] = "osd"
    series = sample.series_of("osd0")
    for t in (2.0, 4.0, 6.0, 8.0, 10.0):
        series.observe_dump(t, {
            "counters": {"store.logstructured.compaction": 3},
            "gauges": {"store.log.garbage_ratio": 0.7},
        })
    result = check.evaluate(sample)
    assert result is not None and result.status == "HEALTH_WARN"
    assert result.detail["osds"]["osd0"] == pytest.approx(0.7)
    # Once the compaction counter moves inside the window, it clears.
    series.observe_dump(11.0, {
        "counters": {"store.logstructured.compaction": 4},
        "gauges": {"store.log.garbage_ratio": 0.2},
    })
    assert check.evaluate(sample) is None


def test_cache_tier_full_check_skips_cacheless_osds():
    check = CacheTierFullCheck()
    sample = ClusterSample(time=1.0)
    sample.roles["osd0"] = "osd"
    # The gauge is None on OSDs hosting no cache tier.
    sample.dumps["osd0"] = {"gauges": {"store.cache.utilization": None}}
    assert check.evaluate(sample) is None


def test_log_garbage_gauge_feeds_mgr_series():
    c = build_tiered(seed=19)
    def work():
        for i in range(40):  # overwrite churn: garbage accumulates
            yield from c.admin.rados_write_full("logged", "hot",
                                                bytes([i % 251]))
    c.do(work())
    series = {}
    sample_cluster(c, series=series)
    paths = set()
    for osd in c.osds:
        paths.update(series[osd.name].paths())
    assert "gauge:store.log.garbage_ratio" in paths
    # Compaction keeps reclaiming on ticks; after settling, no OSD
    # carries eligible garbage debt and the stall check stays silent.
    c.run(6.0)
    report = c.health()
    assert "COMPACTION_STALLED" not in report["checks"]


def test_prometheus_exports_store_metrics():
    c = build_tiered(seed=23, mgr=True)
    def work():
        for i in range(8):
            yield from c.admin.rados_write_full("cachedcold", f"p{i}",
                                                b"y" * 32)
    c.do(work())
    c.run(6.0)  # scrape periods
    samples = parse_prometheus_text(
        c.daemon_command("mgr0", "metrics.export"))
    gauge_names = {s.labels["name"] for s in samples
                   if s.metric == "repro_gauge"}
    assert "store.cache.utilization" in gauge_names
    assert "store.cache.dirty" in gauge_names
    counter_names = {s.labels["name"] for s in samples
                     if s.metric == "repro_counter_total"}
    assert any(n.startswith("store.cache.") for n in counter_names)
    assert any(n.startswith("store.coldstore.") for n in counter_names)
