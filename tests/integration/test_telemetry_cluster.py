"""Integration tests: telemetry on a full booted cluster.

The acceptance bar from the telemetry issue: after a workload,
``telemetry.dump`` on any daemon returns non-empty counters, and one
traced ZLog append yields a span tree showing the client → sequencer
(MDS capability) → OSD objclass hops in simulated time.
"""

import pytest

from repro.core import MalacologyCluster
from repro.zlog import ZLog


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=3, mdss=1, seed=41)


@pytest.fixture(scope="module")
def log(cluster):
    client = cluster.new_client("zl")
    log = ZLog(client, "tlog")
    cluster.sim.run_until_complete(
        client.do(log.create(), name="create"))
    return log


def test_dump_nonempty_on_every_daemon_after_workload(cluster, log):
    client = log.client
    for _ in range(5):
        cluster.sim.run_until_complete(
            client.do(log.append({"n": 1}), name="append"))
    dump = cluster.telemetry_dump()
    assert set(dump) == {d.name for d in cluster.daemons()}
    for mon in cluster.mons:
        assert dump[mon.name]["counters"], mon.name
    for osd in cluster.osds:
        assert dump[osd.name]["counters"], osd.name
    for mds in cluster.mdss:
        assert dump[mds.name]["counters"], mds.name
    # The consensus and data paths both showed up where they should.
    leader = cluster.leader_monitor()
    assert dump[leader.name]["counters"]["paxos.commit"] > 0
    assert any("objclass.zlog.write" in dump[o.name]["counters"]
               for o in cluster.osds)
    # Client-side telemetry: append latencies were retained.
    assert client.perf.latency("zlog.append").count == 5
    assert len(client.perf.samples("zlog.append")) == 5


def test_traced_zlog_append_spans_client_mds_osd(cluster, log):
    client = log.client
    proc = client.do(client.traced(log.append({"n": 2}), "zlog.append"),
                     name="traced-append")
    cluster.sim.run_until_complete(proc)

    collector = cluster.sim.trace_collector
    trace_id = collector.trace_ids()[-1]
    spans = collector.spans(trace_id)
    daemons_hit = {s.daemon for s in spans}
    # The append touched the client (root), at least one OSD (objclass
    # write), and — unless the cap was already cached — the MDS.
    assert client.name in daemons_hit
    assert any(d.startswith("osd") for d in daemons_hit)
    root = spans[0]
    assert root.name == "zlog.append" and root.parent_id is None
    assert all(s.start >= root.start for s in spans)
    assert all(s.end is not None and s.end <= root.end for s in spans)
    # The OSD op span is a descendant of the root through real hops.
    by_id = {s.span_id: s for s in spans}
    osd_spans = [s for s in spans if s.name == "osd_op"]
    assert osd_spans
    cursor = osd_spans[0]
    chain = [cursor.daemon]
    while cursor.parent_id is not None:
        cursor = by_id[cursor.parent_id]
        chain.append(cursor.daemon)
    assert chain[-1] == client.name
    # Rendering mentions the objclass hop with simulated timings.
    rendered = cluster.telemetry_trace(trace_id, render=True)
    assert "osd_op" in rendered and "us" in rendered
    # The critical path runs from the root down to a leaf.
    path = collector.critical_path(trace_id)
    assert path[0]["name"] == "zlog.append"
    assert len(path) >= 2


def test_cap_grant_traced_through_mds(cluster):
    # A fresh client's first seq_next must take the MDS grant path, so
    # the trace shows the sequencer-capability hop explicitly.
    client = cluster.new_client("fresh")
    log2 = ZLog(client, "tlog2")
    cluster.sim.run_until_complete(
        client.do(log2.create(), name="create2"))

    def op():
        yield from log2.append({"first": True})

    proc = client.do(client.traced(op(), "first-append"), name="first")
    cluster.sim.run_until_complete(proc)
    collector = cluster.sim.trace_collector
    trace_id = collector.trace_ids()[-1]
    names = {s.name for s in collector.spans(trace_id)}
    assert "mds_req" in names  # the capability grant hop
    assert "osd_op" in names   # the objclass write hop


def test_cluster_reset_clears_counters_and_traces(cluster, log):
    client = log.client
    cluster.sim.run_until_complete(
        client.do(log.append({"n": 3}), name="append"))
    assert any(d["counters"] for d in cluster.telemetry_dump().values())
    cluster.telemetry_reset()
    dump = cluster.telemetry_dump()
    assert all(d["counters"] == {} for d in dump.values())
    assert cluster.telemetry_trace() == {"traces": []}


def test_osd_crash_resets_its_counters_only(cluster, log):
    client = log.client
    for _ in range(3):
        cluster.sim.run_until_complete(
            client.do(log.append({"n": 4}), name="append"))
    victim = next(o for o in cluster.osds
                  if o.perf.get("op.in") > 0)
    survivor = next(d for d in cluster.daemons()
                    if d is not victim and d.perf.nonzero())
    victim.crash()
    assert not victim.perf.nonzero()
    assert survivor.perf.nonzero()  # a crash is local, not cluster-wide
    victim.restart()
    cluster.run(5.0)  # let it boot and rejoin
    assert victim.alive
