"""Integration tests: RADOS watch/notify."""

import pytest

from repro.core import MalacologyCluster
from repro.rados.placement import locate


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=4, mdss=0, seed=71)


def watcher_client(cluster, name):
    client = cluster.new_client(name)
    client.events = []
    return client


def test_notify_reaches_all_watchers(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("data", "watched", b"x"))
    w1, w2 = watcher_client(c, "w1"), watcher_client(c, "w2")
    for w in (w1, w2):
        cb = (lambda events: lambda pool, oid, payload, notifier:
              events.append((oid, payload, notifier)))(w.events)
        c.sim.run_until_complete(
            w.do(w.rados_watch("data", "watched", cb)))
    count = c.do(c.admin.rados_notify("data", "watched",
                                      {"event": "updated"}))
    assert count == 2
    c.run(1.0)
    for w in (w1, w2):
        assert w.events == [("watched", {"event": "updated"}, "admin")]


def test_unwatch_stops_delivery(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("data", "quiet", b"x"))
    w = watcher_client(c, "w3")
    cb = lambda pool, oid, payload, notifier: w.events.append(payload)
    c.sim.run_until_complete(w.do(w.rados_watch("data", "quiet", cb)))
    c.sim.run_until_complete(w.do(w.rados_unwatch("data", "quiet")))
    count = c.do(c.admin.rados_notify("data", "quiet", "ping"))
    assert count == 0
    c.run(1.0)
    assert w.events == []


def test_watches_are_volatile_across_osd_failover(cluster):
    """OSD-side watch sessions die with the primary.

    With the client's auto-re-watch guard opted out, this pins the raw
    librados semantics: the watch is lost on failover until the caller
    re-watches by hand.  (Guard-on recovery is covered in
    test_watch_storms.py.)
    """
    c = cluster
    c.do(c.admin.rados_write_full("data", "flappy", b"x"))
    w = watcher_client(c, "w4")
    w.WATCH_AUTO_REWATCH = False  # instance-level opt-out
    cb = lambda pool, oid, payload, notifier: w.events.append(payload)
    c.sim.run_until_complete(w.do(w.rados_watch("data", "flappy", cb)))
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", "flappy")
    primary = next(o for o in c.osds if o.name == acting[0])
    primary.crash()
    c.run(20.0)  # failure detected, new primary promoted
    # The watch died with the primary; re-watching on the new primary
    # restores delivery (librados semantics).
    count = c.do(c.admin.rados_notify("data", "flappy", "lost"))
    assert count == 0
    c.sim.run_until_complete(w.do(w.rados_watch("data", "flappy", cb)))
    count = c.do(c.admin.rados_notify("data", "flappy", "back"))
    assert count == 1
    c.run(1.0)
    assert w.events == ["back"]
