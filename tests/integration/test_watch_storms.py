"""Integration tests: watch/notify under storms and failures.

Satellite coverage for the changelog PR: notify fan-out to many
watchers is complete and deterministically ordered, and the client's
auto-re-watch guard restores delivery after the primary OSD restarts
or fails over — the machinery changelog consumers lean on to keep
tailing across OSD churn without manual re-watch calls.
"""

import pytest

from repro.core import MalacologyCluster
from repro.rados.placement import locate


@pytest.fixture()
def cluster():
    return MalacologyCluster.build(osds=4, mdss=0, seed=72)


def watcher_client(cluster, name):
    client = cluster.new_client(name)
    client.events = []
    cb = (lambda events: lambda pool, oid, payload, notifier:
          events.append(payload))(client.events)
    client.watch_cb = cb
    return client


def test_notify_storm_fans_out_to_all_watchers_in_order(cluster):
    c = cluster
    c.do(c.admin.rados_write_full("data", "hot", b"x"))
    watchers = [watcher_client(c, f"w{i:02d}") for i in range(12)]
    for w in watchers:
        c.sim.run_until_complete(
            w.do(w.rados_watch("data", "hot", w.watch_cb)))

    sends = []
    orig = c.net.send
    def spy(src, dst, msg):
        if getattr(msg, "method", None) == "watch_event":
            sends.append((src, dst))
        return orig(src, dst, msg)
    c.net.send = spy

    count = c.do(c.admin.rados_notify("data", "hot", {"gen": 1}))
    assert count == 12
    c.run(1.0)
    # Every watcher heard it exactly once...
    for w in watchers:
        assert w.events == [{"gen": 1}]
    # ...and the fan-out left the primary in sorted watcher order — a
    # deterministic schedule, not set-iteration order (MAL005).
    assert [dst for _, dst in sends] == sorted(w.name for w in watchers)
    assert len({src for src, _ in sends}) == 1  # one primary fans out

    # A second storm after the first: no duplicate registrations.
    count = c.do(c.admin.rados_notify("data", "hot", {"gen": 2}))
    assert count == 12


def test_auto_rewatch_restores_delivery_after_osd_restart(cluster):
    """Primary crash wipes its watch table; the guard re-registers.

    No manual ``rados_watch`` call after the crash — the client's
    periodic ``osd_watch_check`` probe notices the dead session and
    re-establishes it (the librados linger/re-watch behavior).
    """
    c = cluster
    c.do(c.admin.rados_write_full("data", "flap", b"x"))
    w = watcher_client(c, "tail0")
    c.sim.run_until_complete(w.do(w.rados_watch("data", "flap", w.watch_cb)))

    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", "flap")
    primary = next(o for o in c.osds if o.name == acting[0])
    primary.crash()
    c.run(1.0)
    primary.restart()
    # Longer than WATCH_REFRESH_INTERVAL: the probe sees the watch
    # gone (volatile table died with the process) and re-watches.
    c.run(3 * w.WATCH_REFRESH_INTERVAL)

    count = c.do(c.admin.rados_notify("data", "flap", "again"))
    assert count == 1
    c.run(1.0)
    assert w.events == ["again"]
    assert w.perf.get("watch.reestablished") >= 1


def test_auto_rewatch_follows_failover_to_new_primary(cluster):
    """Primary dies for good; the guard re-watches on its successor."""
    c = cluster
    c.do(c.admin.rados_write_full("data", "moved", b"x"))
    w = watcher_client(c, "tail1")
    c.sim.run_until_complete(w.do(w.rados_watch("data", "moved", w.watch_cb)))

    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", "moved")
    old_primary = next(o for o in c.osds if o.name == acting[0])
    old_primary.crash()
    # Failure detection, map churn, promotion of the replica, and at
    # least one guard pass against the *new* primary.
    c.run(30.0)

    _, acting_now = locate(c.mons[0].store.osdmap, "data", "moved")
    assert acting_now and acting_now[0] != old_primary.name

    count = c.do(c.admin.rados_notify("data", "moved", "handoff"))
    assert count == 1
    c.run(1.0)
    assert w.events == ["handoff"]
    assert w.perf.get("watch.reestablished") >= 1
