"""Integration tests: ZLog under daemon failures.

The service-level claims of section 5.2: the log inherits RADOS's
durability (appends survive OSD loss), reads never block during
sequencer failure, and MDS failover plus CORFU seal recovery restore a
safe sequencer without re-issuing acknowledged positions.
"""

import pytest

from repro.core import MalacologyCluster
from repro.rados.placement import locate
from repro.zlog import StripeLayout, ZLog, recover_log


def build(seed):
    return MalacologyCluster.build(osds=4, mdss=1, seed=seed)


def make_log(cluster, name, width=4):
    log = ZLog(cluster.admin, name, layout=StripeLayout(name, width=width))
    cluster.do(log.create())
    return log


def test_acked_appends_survive_osd_failure():
    c = build(91)
    log = make_log(c, "durable")
    for i in range(8):
        c.do(log.append(f"entry-{i}"))
    # Kill the primary of stripe object 0 — some entries lived there.
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", log.layout.object_of(0))
    victim = next(o for o in c.osds if o.name == acting[0])
    victim.crash()
    c.run(20.0)  # failure report, map churn, replica promotion
    for i in range(8):
        entry = c.do(log.read(i))
        assert entry["data"] == f"entry-{i}"


def test_appends_continue_during_osd_recovery():
    c = build(92)
    log = make_log(c, "alive")
    c.do(log.append("before"))
    victim = c.osds[0]
    victim.crash()
    c.run(15.0)
    for i in range(4):
        pos = c.do(log.append(f"during-{i}"))
        assert c.do(log.read(pos))["data"] == f"during-{i}"
    victim.restart()
    c.run(15.0)
    pos = c.do(log.append("after"))
    assert c.do(log.read(pos))["data"] == "after"


def test_mds_failover_with_seal_recovery_is_safe():
    """The full section 5.2.2 story: the sequencer's volatile state
    dies with the MDS; seal-based recovery restarts the counter past
    everything written, so no acknowledged entry is ever overwritten."""
    c = build(93)
    log = make_log(c, "failover")
    written = {}
    for i in range(6):
        pos = c.do(log.append(f"pre-{i}"))
        written[pos] = f"pre-{i}"
    mds = c.mdss[0]
    mds.crash()
    c.run(2.0)
    mds.restart()
    c.run(10.0)
    # The restarted MDS reloaded the inode from RADOS, whose embedded
    # tail may be stale (per-op increments are volatile by design).
    # CORFU recovery re-fences and recomputes.
    new_epoch, new_tail = c.do(recover_log(log))
    assert new_tail >= 6
    for i in range(3):
        pos = c.do(log.append(f"post-{i}"))
        assert pos not in written
        written[pos] = f"post-{i}"
    # Every acknowledged entry, pre and post failover, is intact.
    for pos, expected in written.items():
        assert c.do(log.read(pos))["data"] == expected


# The data pool rebuilt on each store backend profile; the module runs
# sanitized, so epoch fencing and replication stay violation-free on
# every backend.
BACKEND_POOLS = {
    "memstore": {"backend": "memstore"},
    "logstructured": {"backend": "logstructured"},
    "coldstore": {"backend": {"profile": "coldstore", "k": 2, "m": 1}},
    "cached": {"backend": "coldstore",
               "cache": {"capacity": 8, "promote_reads": 1}},
}


def build_on(profile, seed):
    pools = dict(MalacologyCluster.DEFAULT_POOLS)
    pools["data"] = {"size": 2, "pg_num": 32, **BACKEND_POOLS[profile]}
    return MalacologyCluster.build(osds=4, mdss=1, seed=seed,
                                   pools=pools)


@pytest.mark.parametrize("profile", sorted(BACKEND_POOLS))
def test_acked_appends_survive_osd_failure_on_every_backend(profile):
    c = build_on(profile, 95)
    log = make_log(c, "durable-" + profile)
    for i in range(6):
        c.do(log.append(f"entry-{i}"))
    c.run(2.0)  # flusher ticks: cold batches encode, dirty writes back
    osdmap = c.mons[0].store.osdmap
    _, acting = locate(osdmap, "data", log.layout.object_of(0))
    victim = next(o for o in c.osds if o.name == acting[0])
    victim.crash()
    c.run(20.0)
    for i in range(6):
        assert c.do(log.read(i))["data"] == f"entry-{i}"


def test_reads_never_block_during_sequencer_outage():
    c = build(94)
    log = make_log(c, "readable")
    for i in range(4):
        c.do(log.append(i))
    c.mdss[0].crash()  # sequencer (MDS) down; storage path untouched
    for i in range(4):
        assert c.do(log.read(i))["data"] == i
