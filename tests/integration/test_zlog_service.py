"""Integration tests for ZLog: the CORFU protocol end to end."""

import pytest

from repro.core import MalacologyCluster, SharedResourceInterface
from repro.errors import NotFound, ReadOnly, StaleEpoch
from repro.zlog import LogBackedDict, StripeLayout, ZLog, recover_log
from repro.zlog.log import sequencer_path


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=4, mdss=1, seed=41)


def make_log(cluster, name, client=None, width=4):
    client = client or cluster.admin
    log = ZLog(client, name, layout=StripeLayout(name, width=width))
    cluster.sim.run_until_complete(client.do(log.create()))
    return log


def test_append_read_round_trip(cluster):
    log = make_log(cluster, "basic")
    c = cluster
    p0 = c.do(log.append({"msg": "first"}))
    p1 = c.do(log.append({"msg": "second"}))
    assert (p0, p1) == (0, 1)
    assert c.do(log.read(0))["data"] == {"msg": "first"}
    assert c.do(log.read(1))["data"] == {"msg": "second"}


def test_positions_stripe_across_objects(cluster):
    log = make_log(cluster, "striped", width=3)
    objs = {log.layout.object_of(p) for p in range(9)}
    assert len(objs) == 3
    c = cluster
    for i in range(6):
        c.do(log.append(i))
    assert [c.do(log.read(i))["data"] for i in range(6)] == list(range(6))


def test_read_unwritten_position_raises(cluster):
    log = make_log(cluster, "holes")
    with pytest.raises(NotFound):
        cluster.do(log.read(17))


def test_fill_then_writer_gets_bounced(cluster):
    log = make_log(cluster, "filled")
    c = cluster
    c.do(log.fill(0))
    assert c.do(log.read(0)) == {"state": "filled"}
    with pytest.raises(ReadOnly):
        c.do(c.admin.rados_exec(
            log.layout.pool, log.layout.object_of(0), "zlog", "write",
            {"epoch": log.epoch, "pos": 0, "data": "late"}))


def test_multi_client_appends_are_uniquely_positioned(cluster):
    log_name = "shared"
    make_log(cluster, log_name)
    c = cluster
    clients = [c.new_client(f"zl{i}") for i in range(3)]
    logs = [ZLog(cl, log_name) for cl in clients]
    for lg in logs:
        c.sim.run_until_complete(lg.client.do(lg.open()))

    def appender(lg, count, tag):
        out = []
        for i in range(count):
            pos = yield from lg.append(f"{tag}:{i}")
            out.append(pos)
        return out

    procs = [lg.client.do(appender(lg, 30, f"c{i}"))
             for i, lg in enumerate(logs)]
    results = [c.sim.run_until_complete(p) for p in procs]
    everything = sorted(pos for r in results for pos in r)
    assert everything == list(range(90))


def test_seal_fences_stale_epoch_appends(cluster):
    log = make_log(cluster, "fenced")
    c = cluster
    c.do(log.append("pre-seal"))
    stale_epoch = log.epoch
    new_epoch, new_tail = c.do(recover_log(log))
    assert new_epoch == stale_epoch + 1
    assert new_tail == 1
    with pytest.raises(StaleEpoch):
        c.do(c.admin.rados_exec(
            log.layout.pool, log.layout.object_of(5), "zlog", "write",
            {"epoch": stale_epoch, "pos": 5, "data": "zombie"}))


def test_stale_client_recovers_transparently(cluster):
    log_name = "transparent"
    log = make_log(cluster, log_name)
    c = cluster
    other_client = c.new_client("stale-guy")
    stale = ZLog(other_client, log_name)
    c.sim.run_until_complete(other_client.do(stale.open()))
    c.do(log.append("a"))
    # Recovery bumps the epoch; the stale client's next append must
    # refresh and land (the retry loop in ZLog.append).
    c.do(recover_log(log))
    proc = other_client.do(stale.append("from-stale"))
    pos = c.sim.run_until_complete(proc)
    assert c.do(log.read(pos))["data"] == "from-stale"


def test_recovery_resumes_past_max_written(cluster):
    log = make_log(cluster, "resume")
    c = cluster
    for i in range(7):
        c.do(log.append(i))
    _, new_tail = c.do(recover_log(log))
    assert new_tail == 7
    pos = c.do(log.append("post-recovery"))
    assert pos == 7


def test_sequencer_failover_never_duplicates_acked_entries():
    """Cap-holder death loses the volatile tail; appends still land on
    unique positions because write-once collisions bounce the writer."""
    c = MalacologyCluster.build(osds=4, mdss=1, seed=42)
    shared = SharedResourceInterface(c.admin)
    c.do(shared.set_lease_policy("best-effort"))
    log_name = "failover"
    log = make_log(c, log_name)
    doomed_client = c.new_client("doomed-appender")
    doomed = ZLog(doomed_client, log_name)
    c.sim.run_until_complete(doomed_client.do(doomed.open()))
    # The doomed client appends (and caches the sequencer cap)...
    proc = doomed_client.do(doomed.append("theirs"))
    c.sim.run_until_complete(proc)
    doomed_client.crash()
    # ... then dies holding the cap.  A fresh appender must still make
    # progress, and the acked entry must survive.
    for i in range(3):
        pos = c.do(log.append(f"mine-{i}"))
        entry = c.do(log.read(pos))
        assert entry["data"] == f"mine-{i}"
    assert c.do(log.read(0))["data"] == "theirs"


def test_log_backed_dict_replicas_converge(cluster):
    log_name = "kvlog"
    make_log(cluster, log_name)
    c = cluster
    writer_client = c.new_client("kv-writer")
    reader_client = c.new_client("kv-reader")
    wlog, rlog = ZLog(writer_client, log_name), ZLog(reader_client,
                                                     log_name)
    c.sim.run_until_complete(writer_client.do(wlog.open()))
    c.sim.run_until_complete(reader_client.do(rlog.open()))
    writer, reader = LogBackedDict(wlog), LogBackedDict(rlog)

    c.sim.run_until_complete(writer_client.do(writer.put("x", 1)))
    c.sim.run_until_complete(writer_client.do(writer.put("y", 2)))
    c.sim.run_until_complete(writer_client.do(writer.delete("x")))

    snap = c.sim.run_until_complete(reader_client.do(reader.snapshot()))
    assert snap == {"y": 2}
    with pytest.raises(NotFound):
        c.sim.run_until_complete(reader_client.do(reader.get("x")))
