"""Integration tests: transactional table over the shared log (§7).

The future-work "elastic database" pattern: serializable
read-modify-write via optimistic concurrency decided by deterministic
log replay.
"""

import pytest

from repro.core import MalacologyCluster
from repro.errors import NotFound
from repro.zlog import StripeLayout, TransactionalTable, ZLog


@pytest.fixture(scope="module")
def cluster():
    return MalacologyCluster.build(osds=4, mdss=1, seed=73)


def make_table(cluster, name, client=None):
    client = client or cluster.admin
    log = ZLog(client, name, layout=StripeLayout(name, width=4))
    if client is cluster.admin:
        cluster.do(log.create())
    else:
        cluster.sim.run_until_complete(client.do(log.open()))
    return TransactionalTable(log)


def test_blind_puts_and_reads(cluster):
    t = make_table(cluster, "txn-basic")
    c = cluster
    c.do(t.blind_put("a", 1))
    c.do(t.blind_put("b", 2))
    assert c.do(t.get("a")) == 1
    assert c.do(t.snapshot()) == {"a": 1, "b": 2}
    with pytest.raises(NotFound):
        c.do(t.get("ghost"))


def test_read_modify_write_commits(cluster):
    t = make_table(cluster, "txn-rmw")
    c = cluster
    c.do(t.blind_put("counter", 0))
    for _ in range(5):
        c.do(t.transact(["counter"],
                        lambda vals: {"counter": vals["counter"] + 1}))
    assert c.do(t.get("counter")) == 5
    assert t.aborts == 0


def test_conflicting_writers_serialize_without_lost_updates(cluster):
    c = cluster
    name = "txn-race"
    make_table(c, name)  # creates the log
    clients = [c.new_client(f"txn{i}") for i in range(3)]
    tables = [make_table(c, name, client=cl) for cl in clients]

    def incrementer(table, count):
        for _ in range(count):
            yield from table.transact(
                ["counter"],
                lambda vals: {"counter": (vals["counter"] or 0) + 1})
        return table

    procs = [cl.do(incrementer(t, 10))
             for cl, t in zip(clients, tables)]
    for p in procs:
        c.sim.run_until_complete(p)
    verifier = make_table(c, name, client=c.new_client("txn-verify"))
    # 30 increments from 3 racing writers: no lost updates.
    assert c.sim.run_until_complete(
        verifier.log.client.do(verifier.get("counter"))) == 30


def test_replicas_agree_on_every_verdict(cluster):
    c = cluster
    name = "txn-verdicts"
    t1 = make_table(c, name)
    c.do(t1.blind_put("x", 0))
    c.do(t1.transact(["x"], lambda v: {"x": v["x"] + 1}))
    # Manually append a doomed transaction: stale read version.
    c.do(t1.log.append({"kind": "txn", "reads": {"x": 0},
                        "writes": {"x": 999}}))
    c.do(t1.sync())
    replica = make_table(c, name, client=c.new_client("txn-replica"))
    snap = c.sim.run_until_complete(
        replica.log.client.do(replica.snapshot()))
    assert snap == {"x": 1}
    assert replica.aborts == 1
    assert replica.commits == t1.commits


def test_transaction_with_multiple_keys_is_atomic(cluster):
    t = make_table(cluster, "txn-multi")
    c = cluster
    c.do(t.blind_put("from", 100))
    c.do(t.blind_put("to", 0))

    def transfer(vals):
        return {"from": vals["from"] - 30, "to": vals["to"] + 30}

    c.do(t.transact(["from", "to"], transfer))
    snap = c.do(t.snapshot())
    assert snap == {"from": 70, "to": 30}
    assert snap["from"] + snap["to"] == 100
