"""Property tests: the erasure codec reconstructs from any k shards."""

from hypothesis import given, settings, strategies as st

from repro.rados.erasure import ErasureCodec, gf_inv, gf_mul

profiles = st.sampled_from([(2, 1), (3, 1), (2, 2), (4, 2), (3, 3)])
payloads = st.binary(min_size=0, max_size=300)


@given(profiles, payloads)
@settings(max_examples=200, deadline=None)
def test_decode_from_all_shards(profile, data):
    k, m = profile
    codec = ErasureCodec(k, m)
    shards = codec.encode(data)
    assert len(shards) == k + m
    assert codec.decode(dict(enumerate(shards)), len(data)) == data


@given(profiles, payloads, st.data())
@settings(max_examples=200, deadline=None)
def test_decode_survives_m_data_losses(profile, data, draw):
    k, m = profile
    codec = ErasureCodec(k, m)
    shards = dict(enumerate(codec.encode(data)))
    # Drop up to m *data* shards (parity all present: always decodable).
    missing = draw.draw(st.lists(st.integers(0, k - 1), max_size=m,
                                 unique=True))
    for i in missing:
        del shards[i]
    assert codec.decode(shards, len(data)) == data


@given(st.sampled_from([(2, 1), (3, 1), (5, 1)]), payloads,
       st.integers(0, 100))
@settings(max_examples=200, deadline=None)
def test_single_parity_tolerates_any_one_loss(profile, data, which):
    k, m = profile
    codec = ErasureCodec(k, m)
    shards = dict(enumerate(codec.encode(data)))
    del shards[which % (k + 1)]
    assert codec.decode(shards, len(data)) == data


@given(st.integers(1, 255), st.integers(1, 255))
@settings(max_examples=300, deadline=None)
def test_gf256_field_axioms(a, b):
    assert gf_mul(a, b) == gf_mul(b, a)
    assert gf_mul(a, 1) == a
    assert gf_mul(a, gf_inv(a)) == 1


def test_decode_needs_k_shards():
    import pytest

    from repro.errors import InvalidArgument

    codec = ErasureCodec(3, 2)
    shards = dict(enumerate(codec.encode(b"hello world")))
    del shards[0]
    del shards[1]
    del shards[3]
    with pytest.raises(InvalidArgument):
        codec.decode(shards, 11)
