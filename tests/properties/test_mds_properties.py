"""Property tests: capability locker and namespace invariants."""

from hypothesis import given, settings, strategies as st

from repro.errors import MalacologyError
from repro.mds.capability import LeasePolicy, Locker
from repro.mds.inode import DIR, FILE, Inode
from repro.mds.namespace import NamespaceCache, parent_of

# ----------------------------------------------------------------------
# Locker: at most one holder, FIFO waiters, releases only by holder.
# ----------------------------------------------------------------------
locker_ops = st.lists(
    st.tuples(
        st.sampled_from(["grant", "release", "drop_client", "next"]),
        st.integers(0, 3),                  # ino
        st.sampled_from(["a", "b", "c", "d"]),  # client
    ),
    min_size=1, max_size=80,
)


@given(locker_ops)
@settings(max_examples=300, deadline=None)
def test_locker_exclusivity_invariant(sequence):
    lk = Locker()
    policy = LeasePolicy()
    holder = {}   # ino -> (client, seq) model
    queue = {}    # ino -> fifo of waiting clients

    for op, ino, client in sequence:
        if op == "grant":
            cap = lk.try_grant(ino, client, 0.0, policy)
            if ino not in holder:
                assert cap is not None and cap.client == client
                holder[ino] = (client, cap.seq)
            elif holder[ino][0] == client:
                assert cap is not None and cap.client == client
            else:
                assert cap is None
                q = queue.setdefault(ino, [])
                if client not in q:
                    q.append(client)
        elif op == "release":
            seq = holder.get(ino, (None, -1))[1]
            removed = lk.release(ino, client, seq)
            if holder.get(ino, (None,))[0] == client:
                assert removed
                del holder[ino]
            else:
                assert not removed
        elif op == "drop_client":
            freed = lk.drop_client(client)
            expected = sorted(i for i, (c, _) in holder.items()
                              if c == client)
            assert sorted(freed) == expected
            for i in expected:
                del holder[i]
            for q in queue.values():
                if client in q:
                    q.remove(client)
        else:  # next waiter promotion
            if ino in holder:
                continue
            nxt = lk.next_waiter(ino)
            q = queue.get(ino, [])
            if q:
                assert nxt == q.pop(0)
                cap = lk.try_grant(ino, nxt, 0.0, policy)
                assert cap is not None
                holder[ino] = (nxt, cap.seq)
            else:
                assert nxt is None

        # Core invariant: the locker's holder view matches the model.
        for i in range(4):
            cap = lk.holder_of(i)
            if i in holder:
                assert cap is not None and cap.client == holder[i][0]
            else:
                assert cap is None


# ----------------------------------------------------------------------
# Namespace: reachability and parent/child consistency.
# ----------------------------------------------------------------------
path_segments = st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                         max_size=3)
ns_ops = st.lists(
    st.tuples(st.sampled_from(["mkdir", "create", "unlink"]),
              path_segments),
    min_size=1, max_size=50,
)


@given(ns_ops)
@settings(max_examples=300, deadline=None)
def test_namespace_matches_model(sequence):
    ns = NamespaceCache()
    ns.add("/", Inode(1, DIR))
    model = {"/": DIR}
    ino = 10

    for op, segments in sequence:
        path = "/" + "/".join(segments)
        ino += 1
        try:
            if op == "mkdir":
                ns.add(path, Inode(ino, DIR))
            elif op == "create":
                ns.add(path, Inode(ino, FILE))
            else:
                ns.remove(path)
        except MalacologyError:
            continue
        if op == "unlink":
            del model[path]
        else:
            # Creation only succeeds when the parent is a dir and the
            # path is free.
            parent = parent_of(path)
            assert model.get(parent) == DIR
            assert path not in model
            model[path] = DIR if op == "mkdir" else FILE

    assert set(ns.all_paths()) == set(model)
    for path in model:
        if path != "/":
            assert parent_of(path) in model  # no orphans
    for path, kind in model.items():
        if kind == DIR:
            children = ns.listdir(path)
            expected = sorted(
                p.rsplit("/", 1)[1] for p in model
                if p != "/" and parent_of(p) == path)
            assert children == expected


@given(ns_ops)
@settings(max_examples=150, deadline=None)
def test_subtree_extract_install_preserves_everything(sequence):
    ns = NamespaceCache()
    ns.add("/", Inode(1, DIR))
    ino = 10
    for op, segments in sequence:
        path = "/" + "/".join(segments)
        ino += 1
        try:
            if op == "mkdir":
                ns.add(path, Inode(ino, DIR))
            elif op == "create":
                ns.add(path, Inode(ino, FILE))
            else:
                ns.remove(path)
        except MalacologyError:
            continue

    before = {p: ns.get(p).to_dict() for p in ns.all_paths()}
    if not ns.has("/a"):
        return
    payload = ns.extract_subtree("/a")
    other = NamespaceCache()
    other.add("/", Inode(1, DIR))
    other.install_subtree(payload)
    merged = {p: other.get(p).to_dict() for p in other.all_paths()
              if p != "/"}
    merged.update({p: ns.get(p).to_dict() for p in ns.all_paths()})
    assert merged == before
