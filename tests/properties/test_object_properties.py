"""Property tests: the stored object vs reference models."""

from hypothesis import given, settings, strategies as st

from repro.rados.objects import StoredObject

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 200),
                  st.binary(max_size=64)),
        st.tuples(st.just("append"), st.just(0), st.binary(max_size=64)),
        st.tuples(st.just("truncate"), st.integers(0, 300), st.just(b"")),
    ),
    max_size=40,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_bytestream_matches_reference_model(sequence):
    obj = StoredObject("x")
    model = bytearray()
    for op, arg, data in sequence:
        if op == "write":
            end = arg + len(data)
            if len(model) < end:
                model.extend(b"\x00" * (end - len(model)))
            model[arg:end] = data
            obj.write(arg, data)
        elif op == "append":
            offset = obj.append(data)
            assert offset == len(model)
            model.extend(data)
        else:
            if arg < len(model):
                del model[arg:]
            else:
                model.extend(b"\x00" * (arg - len(model)))
            obj.truncate(arg)
        assert bytes(obj.data) == bytes(model)
        assert obj.size == len(model)


@given(ops)
@settings(max_examples=100, deadline=None)
def test_version_counts_every_mutation(sequence):
    obj = StoredObject("x")
    for i, (op, arg, data) in enumerate(sequence):
        if op == "write":
            obj.write(arg, data)
        elif op == "append":
            obj.append(data)
        else:
            obj.truncate(arg)
    assert obj.version == len(sequence)


kv_ops = st.lists(
    st.tuples(st.sampled_from(["set", "del"]),
              st.text(alphabet="abcdef.", min_size=1, max_size=6),
              st.integers()),
    max_size=40,
)


@given(kv_ops, st.text(alphabet="abcdef.", max_size=3))
@settings(max_examples=200, deadline=None)
def test_omap_list_matches_sorted_model(sequence, prefix):
    obj = StoredObject("x")
    model = {}
    for op, key, value in sequence:
        if op == "set":
            obj.omap_set(key, value)
            model[key] = value
        else:
            obj.omap_del(key)
            model.pop(key, None)
    expected = sorted((k, v) for k, v in model.items()
                      if k.startswith(prefix))
    assert obj.omap_list(prefix=prefix) == expected
    # Pagination: walking with max_items reconstructs the full scan.
    walked, cursor = [], ""
    while True:
        page = obj.omap_list(start=cursor, max_items=3, prefix=prefix)
        if not page:
            break
        walked.extend(page)
        cursor = page[-1][0]
    assert walked == expected


@given(kv_ops)
@settings(max_examples=100, deadline=None)
def test_round_trip_serialization_is_lossless(sequence):
    obj = StoredObject("x")
    for op, key, value in sequence:
        if op == "set":
            obj.omap_set(key, value)
        else:
            obj.omap_del(key)
    obj.write(0, b"payload")
    obj.xattr_set("meta", {"a": 1})
    clone = StoredObject.from_dict(obj.to_dict())
    assert clone.digest() == obj.digest()
    assert clone.version == obj.version
    # And digests actually distinguish different content.
    clone.omap_set("divergent", 1)
    assert clone.digest() != obj.digest()
