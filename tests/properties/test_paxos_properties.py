"""Property tests: Paxos safety under adversarial message schedules.

The property that matters is *agreement*: across any interleaving of
prepares and accepts from competing proposers — including lost
messages, re-deliveries, and stale retries — no two quorums ever
choose different values for the same instance.
"""

from hypothesis import given, settings, strategies as st

from repro.monitor.paxos import Acceptor, ChosenLog, Proposal

ACCEPTORS = 3
QUORUM = 2


@st.composite
def schedules(draw):
    """A random schedule of proposer actions against 3 acceptors."""
    steps = draw(st.lists(
        st.tuples(
            st.sampled_from(["prepare", "accept"]),
            st.integers(min_value=0, max_value=3),   # proposer id
            st.integers(min_value=1, max_value=5),   # round
            st.integers(min_value=0, max_value=2),   # instance
            st.lists(st.integers(min_value=0, max_value=ACCEPTORS - 1),
                     min_size=1, max_size=ACCEPTORS, unique=True),
        ),
        min_size=1, max_size=60))
    return steps


@given(schedules())
@settings(max_examples=200, deadline=None)
def test_agreement_under_arbitrary_schedules(steps):
    acceptors = [Acceptor() for _ in range(ACCEPTORS)]
    # proposer state: what each proposer would propose per instance.
    chosen = {}  # instance -> value, first quorum-accepted

    # Per-proposer phase-1 state: a legal proposer only issues accepts
    # after a prepare that gathered a quorum of promises, and must
    # re-propose the highest-pid value that prepare adopted.
    prepared = {}  # proposer -> (pid, adopted)

    # Track which DISTINCT acceptors accepted each (instance, pid,
    # value); re-delivering an accept to the same acceptor must not
    # count twice toward a quorum.
    accepted_by = {}

    for action, proposer, rnd, instance, targets in steps:
        pid = (rnd, proposer)
        if action == "prepare":
            promised = []
            adopted = {}
            for t in targets:
                rep = acceptors[t].handle_prepare(pid, start=0)
                if rep.ok:
                    promised.append(t)
                    for inst, (apid, aval) in rep.accepted.items():
                        if inst not in adopted or apid > adopted[inst][0]:
                            adopted[inst] = (apid, aval)
            if len(promised) >= QUORUM:
                prepared[proposer] = (pid, adopted)
        else:
            state = prepared.get(proposer)
            if state is None:
                continue  # never accepts before completing phase 1
            ppid, adopted = state
            if instance in adopted:
                value = adopted[instance][1]
            else:
                value = f"v-{proposer}-{ppid[0]}-{instance}"
            key = (instance, ppid, value)
            for t in targets:
                ok = acceptors[t].handle_accept(
                    Proposal(instance, ppid, value))
                if ok:
                    accepted_by.setdefault(key, set()).add(t)
                    if len(accepted_by[key]) >= QUORUM:
                        if instance in chosen:
                            assert chosen[instance] == value, (
                                "agreement violated")
                        else:
                            chosen[instance] = value


@given(st.lists(st.tuples(st.integers(0, 5), st.text(min_size=1,
                                                     max_size=3)),
                min_size=1, max_size=30))
@settings(max_examples=200, deadline=None)
def test_chosen_log_applies_contiguously(learns):
    log = ChosenLog()
    first_value = {}
    applied = []
    for instance, value in learns:
        if instance in first_value:
            value = first_value[instance]  # re-learn same decision
        else:
            first_value[instance] = value
        log.learn(instance, value)
        applied.extend(log.take_ready())
    # Applied instances are exactly 0..k contiguous, in order.
    indices = [i for i, _ in applied]
    assert indices == sorted(indices)
    assert indices == list(range(len(indices)))
    # Values match the first decision for each instance.
    for i, v in applied:
        assert v == first_value[i]
