"""Property tests: placement stability (the CRUSH-like property)."""

from hypothesis import given, settings, strategies as st

from repro.monitor.maps import OSDMap
from repro.rados.placement import acting_set, pg_of


def make_map(up_names, size=2, pg_num=32):
    return OSDMap(
        epoch=1,
        osds={name: "up" for name in up_names},
        pools={"p": {"size": size, "pg_num": pg_num}},
    )


names = st.lists(st.integers(0, 40).map(lambda i: f"osd{i}"),
                 min_size=3, max_size=20, unique=True)


@given(names, st.integers(0, 31))
@settings(max_examples=200, deadline=None)
def test_acting_set_is_deterministic_and_sized(osds, pgid):
    m = make_map(osds)
    acting = acting_set(m, "p", pgid)
    assert acting == acting_set(m, "p", pgid)
    assert len(acting) == min(2, len(osds))
    assert len(set(acting)) == len(acting)
    assert all(o in osds for o in acting)


@given(names)
@settings(max_examples=100, deadline=None)
def test_removing_one_osd_only_moves_its_pgs(osds):
    """Minimal movement: PGs not touching the dead OSD keep their set."""
    m_before = make_map(osds)
    victim = sorted(osds)[0]
    survivors = [o for o in osds if o != victim]
    m_after = make_map(survivors)
    for pgid in range(32):
        before = acting_set(m_before, "p", pgid)
        after = acting_set(m_after, "p", pgid)
        if victim not in before:
            assert after == before
        else:
            # Only the victim's slot changes; other members keep their
            # relative order (rendezvous hashing's stability).
            kept = [o for o in before if o != victim]
            assert [o for o in after if o in kept] == kept


@given(st.text(min_size=1, max_size=20), st.integers(1, 128))
@settings(max_examples=200, deadline=None)
def test_pg_mapping_in_range_and_stable(oid, pg_num):
    pgid = pg_of(oid, pg_num)
    assert 0 <= pgid < pg_num
    assert pg_of(oid, pg_num) == pgid


# ----------------------------------------------------------------------
# pg_num changes (PG splitting) — the re-shard the OSDs react to
# ----------------------------------------------------------------------
def make_map_marked_down(names, down, size=2, pg_num=32):
    return OSDMap(
        epoch=2,
        osds={n: ("down" if n in down else "up") for n in names},
        pools={"p": {"size": size, "pg_num": pg_num}},
    )


@given(st.lists(st.text(min_size=1, max_size=12), min_size=1,
                max_size=30, unique=True),
       st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_pg_num_growth_reshards_consistently(oids, pg_num):
    """After a pg_num change every object lands in exactly one new PG,
    and re-sharding is a pure function — any two OSDs doing the split
    locally agree on where every object went."""
    old = {oid: pg_of(oid, pg_num) for oid in oids}
    grown = pg_num * 2
    new = {oid: pg_of(oid, grown) for oid in oids}
    assert all(0 <= p < grown for p in new.values())
    # Independent recomputation agrees (what _split_pgs relies on).
    assert new == {oid: pg_of(oid, grown) for oid in oids}
    # Shrinking back restores the original layout exactly.
    assert old == {oid: pg_of(oid, pg_num) for oid in oids}


@given(st.integers(1, 6), st.integers(0, 31))
@settings(max_examples=100, deadline=None)
def test_pg_num_change_does_not_disturb_acting_sets(factor, pgid):
    """Acting sets depend on (pool, pgid, membership) — a pg_num-only
    change never remaps a surviving pgid's OSDs."""
    osds = [f"osd{i}" for i in range(6)]
    before = make_map(osds, pg_num=32)
    after = make_map(osds, pg_num=32 * factor)
    assert acting_set(before, "p", pgid) == acting_set(after, "p", pgid)


# ----------------------------------------------------------------------
# Acting sets under OSD failures (down, not removed)
# ----------------------------------------------------------------------
@given(names, st.integers(0, 31))
@settings(max_examples=150, deadline=None)
def test_acting_set_skips_down_osds(osds, pgid):
    down = set(sorted(osds)[: len(osds) // 2])
    m = make_map_marked_down(osds, down)
    acting = acting_set(m, "p", pgid)
    assert not (set(acting) & down)
    up = [o for o in osds if o not in down]
    assert len(acting) == min(2, len(up))


@given(names, st.integers(0, 31))
@settings(max_examples=150, deadline=None)
def test_down_osd_promotes_next_in_rank_only(osds, pgid):
    """Marking one member down promotes the next-ranked OSD; survivors
    keep their relative order (minimal movement under failure)."""
    all_up = make_map(osds, size=2)
    before = acting_set(all_up, "p", pgid)
    victim = before[0]
    after = acting_set(make_map_marked_down(osds, {victim}), "p", pgid)
    assert victim not in after
    kept = [o for o in before if o != victim]
    assert after[: len(kept)] == kept
    # A down OSD that was NOT in the set changes nothing.
    outsiders = [o for o in osds if o not in before]
    if outsiders:
        unchanged = acting_set(
            make_map_marked_down(osds, {outsiders[0]}), "p", pgid)
        assert unchanged == before


def test_acting_set_empty_when_all_osds_down():
    osds = ["osd0", "osd1", "osd2"]
    m = make_map_marked_down(osds, set(osds))
    assert acting_set(m, "p", 0) == []
