"""Property tests: placement stability (the CRUSH-like property)."""

from hypothesis import given, settings, strategies as st

from repro.monitor.maps import OSDMap
from repro.rados.placement import acting_set, pg_of


def make_map(up_names, size=2, pg_num=32):
    return OSDMap(
        epoch=1,
        osds={name: "up" for name in up_names},
        pools={"p": {"size": size, "pg_num": pg_num}},
    )


names = st.lists(st.integers(0, 40).map(lambda i: f"osd{i}"),
                 min_size=3, max_size=20, unique=True)


@given(names, st.integers(0, 31))
@settings(max_examples=200, deadline=None)
def test_acting_set_is_deterministic_and_sized(osds, pgid):
    m = make_map(osds)
    acting = acting_set(m, "p", pgid)
    assert acting == acting_set(m, "p", pgid)
    assert len(acting) == min(2, len(osds))
    assert len(set(acting)) == len(acting)
    assert all(o in osds for o in acting)


@given(names)
@settings(max_examples=100, deadline=None)
def test_removing_one_osd_only_moves_its_pgs(osds):
    """Minimal movement: PGs not touching the dead OSD keep their set."""
    m_before = make_map(osds)
    victim = sorted(osds)[0]
    survivors = [o for o in osds if o != victim]
    m_after = make_map(survivors)
    for pgid in range(32):
        before = acting_set(m_before, "p", pgid)
        after = acting_set(m_after, "p", pgid)
        if victim not in before:
            assert after == before
        else:
            # Only the victim's slot changes; other members keep their
            # relative order (rendezvous hashing's stability).
            kept = [o for o in before if o != victim]
            assert [o for o in after if o in kept] == kept


@given(st.text(min_size=1, max_size=20), st.integers(1, 128))
@settings(max_examples=200, deadline=None)
def test_pg_mapping_in_range_and_stable(oid, pg_num):
    pgid = pg_of(oid, pg_num)
    assert 0 <= pgid < pg_num
    assert pg_of(oid, pg_num) == pgid
