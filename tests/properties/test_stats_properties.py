"""Property tests: measurement primitives used by the harness."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mds.metrics import DecayCounter
from repro.telemetry.counters import LatencyTracker
from repro.util.stats import Cdf, OnlineStats, ThroughputSeries, percentile
from repro.workloads import interleaving_runs

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


@given(st.lists(floats, min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_percentile_bounds_and_order(samples):
    assert percentile(samples, 0) == min(samples)
    assert percentile(samples, 100) == max(samples)
    p25, p50, p75 = (percentile(samples, p) for p in (25, 50, 75))
    assert p25 <= p50 <= p75


@given(st.lists(floats, min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_cdf_quantile_is_monotone_and_inverts(samples):
    cdf = Cdf(samples)
    qs = [i / 20 for i in range(21)]
    values = [cdf.quantile(q) for q in qs]
    assert values == sorted(values)
    # at() of a quantile covers that fraction of samples to within one
    # sample's probability mass (linear interpolation between ranks).
    for q in qs:
        assert cdf.at(cdf.quantile(q)) >= q - 1.0 / len(samples) - 1e-9


@given(st.lists(floats, min_size=2, max_size=200))
@settings(max_examples=200, deadline=None)
def test_online_stats_matches_batch_computation(samples):
    stats = OnlineStats()
    for x in samples:
        stats.add(x)
    mean = sum(samples) / len(samples)
    var = sum((x - mean) ** 2 for x in samples) / (len(samples) - 1)
    assert math.isclose(stats.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(stats.variance, var, rel_tol=1e-6, abs_tol=1e-6)
    assert stats.min == min(samples) and stats.max == max(samples)


@given(st.lists(st.floats(min_value=0, max_value=100,
                          allow_nan=False), min_size=1, max_size=200))
@settings(max_examples=200, deadline=None)
def test_throughput_series_conserves_events(times):
    series = ThroughputSeries(window=1.0)
    for t in times:
        series.record(t)
    assert series.total == len(times)
    # Integrating the series recovers every event.
    integrated = sum(rate * series.window for _, rate in series.series())
    assert math.isclose(integrated, len(times), rel_tol=1e-9)
    # mean_rate over the full span equals count / span.
    span_windows = int(max(times) // 1.0) + 1
    assert math.isclose(series.mean_rate(0.0, max(times)),
                        len(times) / span_windows, rel_tol=1e-9)


@given(st.floats(min_value=0.1, max_value=10),
       st.lists(st.floats(min_value=0, max_value=50, allow_nan=False),
                min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_decay_counter_never_negative_and_decays(halflife, hit_times):
    c = DecayCounter(halflife=halflife)
    for t in sorted(hit_times):
        c.hit(t)
    end = max(hit_times)
    value = c.get(end)
    assert 0 <= value <= len(hit_times) + 1e-9
    assert c.get(end + 10 * halflife) < value + 1e-9
    assert c.get(end + 100 * halflife) < 1e-9 * len(hit_times) + 1e-12


durations = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                      allow_infinity=False)


def test_latency_tracker_quantile_edge_cases():
    empty = LatencyTracker(retain=True)
    # Empty tracker: 0.0, matching to_dict's "nothing recorded" value.
    assert empty.quantile(0.5) == 0.0
    assert empty.quantile(0.0) == 0.0 and empty.quantile(1.0) == 0.0
    # Out-of-range q raises, even on an empty tracker.
    for bad in (-0.01, 1.01, 2.0, -1.0):
        with pytest.raises(ValueError):
            empty.quantile(bad)
    # Summary-only trackers cannot answer quantiles at all.
    summary = LatencyTracker(retain=False)
    summary.observe(1.0)
    with pytest.raises(ValueError):
        summary.quantile(0.5)


@given(durations)
@settings(max_examples=200, deadline=None)
def test_latency_tracker_single_sample_is_every_quantile(sample):
    t = LatencyTracker(retain=True)
    t.observe(sample)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert t.quantile(q) == sample


@given(st.lists(durations, min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_latency_tracker_quantiles_bounded_and_monotone(samples):
    t = LatencyTracker(retain=True)
    for s in samples:
        t.observe(s)
    # p0/p100 are the exact extremes.
    assert t.quantile(0.0) == min(samples)
    assert t.quantile(1.0) == max(samples)
    # Monotone in q, always inside [min, max].
    qs = [i / 10 for i in range(11)]
    values = [t.quantile(q) for q in qs]
    assert values == sorted(values)
    assert all(min(samples) <= v <= max(samples) for v in values)


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 100)),
                min_size=1, max_size=100))
@settings(max_examples=200, deadline=None)
def test_interleaving_runs_partition_positions(claims):
    # Build traces: client -> list of (time, pos); last claim per pos
    # wins (mirrors how unique positions are granted in reality, where
    # each pos has exactly one owner; we dedupe to model that).
    owner = {}
    for client, pos in claims:
        owner.setdefault(pos, client)
    traces = [[] for _ in range(4)]
    for pos, client in owner.items():
        traces[client].append((0.0, pos))
    runs = interleaving_runs(traces)
    assert sum(runs) == len(owner)
    assert all(r >= 1 for r in runs)
