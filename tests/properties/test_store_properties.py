"""Property tests: store backends against a model, cache invariants.

Each backend must behave like one ``oid -> StoredObject`` mapping no
matter how operations interleave with maintenance ticks, and the cache
tier must never lose a dirty object to eviction.  Determinism is the
other pillar: the same op sequence replayed on a fresh store makes
byte-identical decisions (the simulator's schedule identity depends on
it).
"""

from hypothesis import given, settings, strategies as st

from repro.rados.objects import StoredObject
from repro.store import CacheTier, ColdStore, LogStructuredStore, \
    MemStore, make_store

# One op: (kind, oid-index, payload-byte).  Small oid space forces
# overwrites, evictions, and garbage; maintenance ticks interleave.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["commit", "fetch", "discard", "maintenance"]),
        st.integers(0, 7),
        st.integers(0, 255),
    ),
    min_size=1, max_size=80)

backends = st.sampled_from(
    ["memstore", "logstructured", "coldstore", "cached"])


def build_store(kind):
    if kind == "cached":
        return make_store("coldstore", cache={"capacity": 3,
                                              "promote_reads": 1})
    return make_store(kind)


def make_obj(oid, payload, version):
    o = StoredObject(oid)
    o.data = bytearray(bytes([payload]) * (payload % 17 + 1))
    o.version = version
    return o


def run_ops(store, ops):
    """Drive the costed plane; returns (model, trace) for comparison."""
    model = {}
    trace = []
    clock = 0.0
    version = 0
    for kind, idx, payload in ops:
        oid = f"o{idx}"
        clock += 1.0
        if kind == "commit":
            version += 1
            store.commit(make_obj(oid, payload, version))
            model[oid] = (bytes([payload]) * (payload % 17 + 1), version)
            trace.append(("commit", oid, version))
        elif kind == "fetch":
            got, delay = store.fetch(oid)
            state = (None if got is None
                     else (bytes(got.data), got.version))
            trace.append(("fetch", oid, state, delay))
        elif kind == "discard":
            store.discard(oid)
            model.pop(oid, None)
            trace.append(("discard", oid))
        else:
            store.maintenance(clock)
            trace.append(("maintenance", clock))
    return model, trace


@given(backends, ops_strategy)
@settings(max_examples=120, deadline=None)
def test_every_backend_matches_the_mapping_model(kind, ops):
    store = build_store(kind)
    model, _ = run_ops(store, ops)
    assert sorted(store) == sorted(model)
    for oid, (data, version) in model.items():
        got = store[oid]
        assert bytes(got.data) == data
        assert got.version == version


@given(backends, ops_strategy)
@settings(max_examples=60, deadline=None)
def test_identical_runs_make_identical_decisions(kind, ops):
    _, trace_a = run_ops(build_store(kind), ops)
    _, trace_b = run_ops(build_store(kind), ops)
    assert trace_a == trace_b


@given(ops_strategy)
@settings(max_examples=120, deadline=None)
def test_cache_dirty_entries_survive_until_written_back(ops):
    base = MemStore()
    tier = CacheTier(base, capacity=2, promote_reads=1)
    model = {}
    clock = 0.0
    version = 0
    for kind, idx, payload in ops:
        oid = f"o{idx}"
        clock += 1.0
        if kind == "commit":
            version += 1
            tier.commit(make_obj(oid, payload, version))
            model[oid] = version
        elif kind == "fetch":
            tier.fetch(oid)
        elif kind == "discard":
            tier.discard(oid)
            model.pop(oid, None)
        else:
            tier.maintenance(clock)
        # The invariant, checked after *every* op: a committed object
        # is always reachable at its latest version — eviction of a
        # dirty (not yet written back) entry would break this.
        for m_oid, m_version in model.items():
            assert tier[m_oid].version == m_version
        # And eviction really only removes clean entries: anything not
        # resident must already be durable in the base store.
        for m_oid, m_version in model.items():
            if m_oid not in tier._entries:
                assert base[m_oid].version == m_version


@given(ops_strategy)
@settings(max_examples=60, deadline=None)
def test_cache_respects_capacity_once_clean(ops):
    tier = CacheTier(MemStore(), capacity=2, promote_reads=1)
    clock = 0.0
    version = 0
    for kind, idx, payload in ops:
        clock += 1.0
        if kind == "commit":
            version += 1
            tier.commit(make_obj(f"o{idx}", payload, version))
        elif kind == "fetch":
            tier.fetch(f"o{idx}")
        elif kind == "discard":
            tier.discard(f"o{idx}")
        else:
            tier.maintenance(clock)
            # A maintenance pass writes everything back, so clean
            # eviction can always reach the capacity target.
            assert tier.dirty_count() == 0
            assert len(tier._entries) <= tier.capacity


@given(ops_strategy)
@settings(max_examples=60, deadline=None)
def test_logstructured_compaction_preserves_live_set(ops):
    store = LogStructuredStore()
    model, _ = run_ops(store, ops)
    store.flush(now=1e6)  # force a final compaction
    assert store.garbage_ratio() == 0.0
    assert sorted(store) == sorted(model)
    for oid, (data, ver) in model.items():
        assert (bytes(store[oid].data), store[oid].version) == (data, ver)


@given(ops_strategy)
@settings(max_examples=60, deadline=None)
def test_coldstore_roundtrips_through_encode_cycles(ops):
    store = ColdStore(k=3, m=2)
    model, _ = run_ops(store, ops)
    store.flush(now=1e6)
    assert store.staged_count() == 0
    for oid, (data, ver) in model.items():
        got, delay = store.fetch(oid)
        assert delay == store.COLD_READ_DELAY
        assert (bytes(got.data), got.version) == (data, ver)
