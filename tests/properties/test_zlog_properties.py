"""Property tests: the CORFU storage interface invariants.

Random op sequences against one object, checked against a reference
model: write-once is never violated, sealed epochs fence everything
older, max_pos tracks the highest written/filled position, and reads
always reflect exactly one state transition history.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import MalacologyError, NotFound, ReadOnly, StaleEpoch
from repro.objclass.bundled import register_all
from repro.objclass.context import MethodContext
from repro.objclass.registry import ClassRegistry

registry = ClassRegistry()
register_all(registry)

zlog_ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "fill", "trim", "read", "seal",
                         "max_position"]),
        st.integers(0, 7),    # position
        st.integers(1, 5),    # epoch
    ),
    min_size=1, max_size=60,
)


@given(zlog_ops)
@settings(max_examples=300, deadline=None)
def test_zlog_matches_reference_model(sequence):
    ctx = MethodContext(None, "obj", now=0.0)
    model = {}          # pos -> (state, data)
    sealed_epoch = 0
    model_max = -1

    for op, pos, epoch in sequence:
        args = {"epoch": epoch, "pos": pos}
        if op == "write":
            args["data"] = f"d{pos}e{epoch}"
        try:
            result = registry.call("zlog", op, ctx, args)
            error = None
        except MalacologyError as exc:
            result, error = None, exc

        if op == "seal":
            if epoch <= sealed_epoch:
                assert isinstance(error, StaleEpoch)
            else:
                assert error is None
                assert result == {"max_pos": model_max}
                sealed_epoch = epoch
            continue

        # All data ops are fenced by the sealed epoch.
        if epoch < sealed_epoch:
            assert isinstance(error, StaleEpoch)
            continue

        if op == "write":
            if pos in model:
                assert isinstance(error, ReadOnly)
            else:
                assert error is None
                model[pos] = ("written", args["data"])
                model_max = max(model_max, pos)
        elif op == "fill":
            state = model.get(pos, (None,))[0]
            if state is None:
                assert error is None
                model[pos] = ("filled", None)
                model_max = max(model_max, pos)
            elif state == "filled":
                assert error is None  # idempotent
            else:
                assert isinstance(error, ReadOnly)
        elif op == "trim":
            assert error is None
            model[pos] = ("trimmed", None)
        elif op == "read":
            if pos not in model:
                assert isinstance(error, NotFound)
            else:
                state, data = model[pos]
                assert error is None
                if state == "written":
                    assert result == {"state": "written", "data": data}
                else:
                    assert result == {"state": state}
        elif op == "max_position":
            assert error is None
            assert result == {"max_pos": model_max}


@given(st.lists(st.integers(1, 30), min_size=1, max_size=20))
@settings(max_examples=200, deadline=None)
def test_seal_epochs_are_strictly_monotonic(epochs):
    ctx = MethodContext(None, "obj", now=0.0)
    highest = 0
    for epoch in epochs:
        try:
            registry.call("zlog", "seal", ctx, {"epoch": epoch})
            assert epoch > highest
            highest = epoch
        except StaleEpoch:
            assert epoch <= highest
