"""Unit tests for changelog layout, records, and the producer shim."""

import pytest

from repro.changelog import (
    CHANGELOG_POOL,
    ChangelogLayout,
    ChangelogProducer,
    tenant_of,
)
from repro.errors import InvalidArgument
from repro.sim import Network, Simulator
from repro.sim.network import lan_latency
from repro.msg import Daemon


# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------
def test_layout_objects_and_bounds():
    layout = ChangelogLayout(name="s", width=3)
    assert layout.all_objects() == [
        "changelog.s.shard.0", "changelog.s.shard.1",
        "changelog.s.shard.2"]
    assert layout.pool == CHANGELOG_POOL
    with pytest.raises(InvalidArgument):
        layout.object_of(3)
    with pytest.raises(InvalidArgument):
        ChangelogLayout(width=0)


def test_layout_shard_of_is_stable_and_round_robins():
    layout = ChangelogLayout(width=4)
    # Pure function: a retried record must map to the same shard.
    assert layout.shard_of("mds0#1", 7) == layout.shard_of("mds0#1", 7)
    # One producer's stream round-robins across all shards.
    shards = {layout.shard_of("mds0#1", i) for i in range(1, 9)}
    assert shards == {0, 1, 2, 3}


def test_layout_roundtrip():
    layout = ChangelogLayout(name="x", width=2, pool="p")
    again = ChangelogLayout.from_dict(layout.to_dict())
    assert (again.name, again.width, again.pool) == ("x", 2, "p")


# ----------------------------------------------------------------------
# Records / tenancy
# ----------------------------------------------------------------------
def test_tenant_of():
    assert tenant_of("/alice/a/b") == "alice"
    assert tenant_of("/bob") == "bob"
    assert tenant_of("/") is None
    assert tenant_of(None) is None


# ----------------------------------------------------------------------
# Producer shim
# ----------------------------------------------------------------------
def make_daemon():
    sim = Simulator(seed=1)
    net = Network(sim, latency=lan_latency())
    return sim, Daemon(sim, net, "mds0")


def test_producer_stamps_records():
    sim, d = make_daemon()
    prod = ChangelogProducer(d, "chlog0")
    r1 = prod.emit("create", "client1", "/alice/f", ino=7)
    r2 = prod.emit("unlink", "client1", "/alice/f", ino=7)
    assert r1["producer"] == "mds0#1" and r1["pseq"] == 1
    assert r2["pseq"] == 2
    assert r1["tenant"] == "alice" and r1["ino"] == 7
    assert d.perf.get("changelog.emit") == 2.0
    with pytest.raises(ValueError):
        prod.emit("chmod", "client1", "/x")


def test_producer_restart_bumps_incarnation():
    sim, d = make_daemon()
    prod = ChangelogProducer(d, "chlog0")
    prod.emit("create", "c", "/a/f")
    assert prod.producer_id == "mds0#1"
    prod.on_daemon_restart()
    r = prod.emit("create", "c", "/a/g")
    # Fresh identity + reset counter: the shard class treats this as a
    # brand-new producer, so the restarted stream can never be deduped
    # against the previous life's pseqs.
    assert r["producer"] == "mds0#2" and r["pseq"] == 1


def test_producer_is_silent_when_daemon_down():
    sim, d = make_daemon()
    prod = ChangelogProducer(d, "chlog0")
    d.crash()
    assert prod.emit("create", "c", "/a/f") is None
