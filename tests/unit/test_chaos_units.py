"""Unit tests: chaos building blocks that need no cluster.

Nemesis schedule round-trips and validation, the ddmin minimizer
against synthetic predicates, and the store fault plane (EIO, torn
commits, bit-rot) through the :class:`FaultInjectingStore` wrapper.
"""

import random

import pytest

from repro.chaos import NemesisOp, NemesisSchedule, minimize_schedule
from repro.errors import MalacologyError
from repro.rados.objects import StoredObject
from repro.store import (
    FaultInjectingStore,
    MemStore,
    StoreFaultPlane,
    unwrap_store,
)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def test_schedule_json_round_trip():
    sched = NemesisSchedule(name="demo", duration=30.0)
    sched.add("flap", at=2.0, target="osd1", down_for=3.0)
    sched.add("loss", at=5.0, src="*", dst="*", rate=0.1, lasts=4.0)
    sched.add("bitrot", at=9.0, pool="data", count=2)
    again = NemesisSchedule.from_json(sched.to_json())
    assert again.to_dict() == sched.to_dict()
    assert len(again) == 3
    assert again.ops[1].params["rate"] == 0.1


def test_schedule_validates_ops():
    with pytest.raises(ValueError):
        NemesisOp(kind="meteor-strike", at=1.0)
    with pytest.raises(ValueError):
        NemesisOp(kind="flap", at=-1.0)


def test_schedule_subset_is_a_deep_copy():
    sched = NemesisSchedule(name="demo")
    sched.add("flap", at=1.0, target="osd0", down_for=2.0)
    sched.add("crash", at=3.0, target="osd1")
    sub = sched.subset([1])
    assert [op.kind for op in sub.ops] == ["crash"]
    sub.ops[0].params["target"] = "changed"
    assert sched.ops[1].params["target"] == "osd1"


# ----------------------------------------------------------------------
# ddmin
# ----------------------------------------------------------------------
def _sched_of(n):
    sched = NemesisSchedule(name="synthetic")
    for i in range(n):
        sched.add("crash", at=float(i), target=f"osd{i}")
    return sched


def test_ddmin_finds_single_culprit():
    sched = _sched_of(8)

    def still_fails(candidate):
        return any(op.params["target"] == "osd5"
                   for op in candidate.ops)

    minimal, runs = minimize_schedule(sched, still_fails)
    assert [op.params["target"] for op in minimal.ops] == ["osd5"]
    assert runs > 0


def test_ddmin_finds_conjunction():
    """Failure requires two specific ops: both must survive."""
    sched = _sched_of(10)

    def still_fails(candidate):
        targets = {op.params["target"] for op in candidate.ops}
        return {"osd2", "osd7"} <= targets

    minimal, _runs = minimize_schedule(sched, still_fails)
    assert sorted(op.params["target"] for op in minimal.ops) \
        == ["osd2", "osd7"]


def test_ddmin_returns_unchanged_when_not_failing():
    sched = _sched_of(4)
    minimal, runs = minimize_schedule(sched, lambda _c: False)
    assert len(minimal.ops) == 4
    assert runs == 1  # only the initial confirmation run


# ----------------------------------------------------------------------
# Store fault plane
# ----------------------------------------------------------------------
def _plane(**kwargs):
    # mal: disable=MAL002 -- fixed-seed RNG in a kernel-free unit test
    return StoreFaultPlane(random.Random(1), clock=lambda: 0.0, **kwargs)


def _obj(oid, data=b"payload", omap=None):
    obj = StoredObject(oid)
    obj.write(0, data)
    if omap:
        obj.omap.update(omap)
    return obj


def test_eio_raises_and_nothing_persists():
    plane = _plane()
    store = FaultInjectingStore(MemStore(), plane, owner="osd0")
    plane.set_eio(1.0)
    with pytest.raises(MalacologyError):
        store.commit(_obj("x"))
    assert "x" not in store
    assert plane.faults_injected == 1
    assert plane.log[0][1] == "eio"


def test_torn_commit_persists_frankenstein_state():
    plane = _plane()
    store = FaultInjectingStore(MemStore(), plane, owner="osd0")
    old = _obj("x", data=b"old", omap={"k": "old"})
    store.commit(old)
    plane.set_torn(1.0)
    new = _obj("x", data=b"new-data", omap={"k": "new"})
    new.version = old.version + 1
    with pytest.raises(MalacologyError):
        store.commit(new)
    torn = store["x"]
    assert bytes(torn.data) == b"new-data"  # data made it to the medium
    assert torn.omap == {"k": "old"}        # metadata did not
    assert plane.log[-1][1] == "torn"


def test_fault_targets_limit_blast_radius():
    plane = _plane()
    hit = FaultInjectingStore(MemStore(), plane, owner="osd0")
    spared = FaultInjectingStore(MemStore(), plane, owner="osd1")
    plane.set_eio(1.0, targets={"osd0"})
    with pytest.raises(MalacologyError):
        hit.commit(_obj("x"))
    spared.commit(_obj("x"))
    assert "x" in spared
    plane.clear()
    assert not plane.active
    hit.commit(_obj("x"))  # cleared plane passes everything through


def test_flip_bit_changes_data_without_version_bump():
    plane = _plane()
    store = MemStore()
    obj = _obj("x", data=b"\x00\x00\x00\x00")
    store["x"] = obj
    version = obj.version
    digest = obj.digest()
    assert plane.flip_bit(store, "x", owner="osd0") is True
    rotted = store["x"]
    assert rotted.version == version           # silent: no version bump
    assert rotted.digest() != digest           # but the digest catches it
    assert sum(bin(b).count("1") for b in rotted.data) == 1
    empty = StoredObject("y")
    store["y"] = empty
    assert plane.flip_bit(store, "y", owner="osd0") is False


def test_mutable_mapping_plane_is_never_faulted():
    """Repair traffic uses the mapping interface; it must always work,
    or injected faults would be unrecoverable by design."""
    plane = _plane()
    store = FaultInjectingStore(MemStore(), plane, owner="osd0")
    plane.set_eio(1.0)
    plane.set_torn(1.0)
    store["x"] = _obj("x")  # would raise if the plane applied here
    assert bytes(store["x"].data) == b"payload"


def test_unwrap_store_reaches_the_real_backend():
    plane = _plane()
    inner = MemStore()
    wrapped = FaultInjectingStore(inner, plane, owner="osd0")
    assert unwrap_store(wrapped) is inner
    assert unwrap_store(inner) is inner
    assert wrapped.profile == inner.profile
