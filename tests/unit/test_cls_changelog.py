"""Unit tests for cls_changelog (and the cls_log pagination guard)."""

import pytest

from repro.errors import (
    InvalidArgument,
    NotPermitted,
    StaleEpoch,
    TryAgain,
)
from repro.objclass import MethodContext
from repro.objclass.bundled import cls_changelog, cls_log
from repro.rados.objects import StoredObject


def ctx_for(obj=None, oid="shard", epoch=None, now=0.0):
    return MethodContext(obj, oid, epoch=epoch, now=now)


def rec(producer, pseq, **extra):
    r = {"producer": producer, "pseq": pseq, "kind": "create",
         "actor": "client1", "path": f"/t/f{pseq}", "time": 0.0}
    r.update(extra)
    return r


def shard_with(records, epoch=1):
    """Build a shard object holding ``records`` (applied in order)."""
    ctx = ctx_for(None)
    cls_changelog.seal(ctx, {"epoch": epoch})
    cls_changelog.append(ctx, {"epoch": epoch, "records": records})
    obj, _ = ctx.outcome()
    return obj


# ----------------------------------------------------------------------
# append: monotone seq, dedup, fencing
# ----------------------------------------------------------------------
def test_append_assigns_monotone_seqs():
    ctx = ctx_for(None)
    cls_changelog.seal(ctx, {"epoch": 1})  # seal-before-write
    out = cls_changelog.append(
        ctx, {"epoch": 1, "records": [rec("mds0#1", 1), rec("mds0#1", 2)]})
    assert out == {"appended": 2, "skipped": 0, "last_seq": 1}
    out = cls_changelog.append(
        ctx, {"epoch": 1, "records": [rec("osd0#1", 1)]})
    assert out["last_seq"] == 2
    obj, _ = ctx.outcome()
    listed = cls_changelog.list_records(ctx_for(obj), {})
    assert [e["seq"] for e in listed["entries"]] == [0, 1, 2]


def test_append_dedups_replayed_pseq():
    obj = shard_with([rec("mds0#1", 1), rec("mds0#1", 2)])
    ctx = ctx_for(obj)
    # A writer retry replays pseq 1-2 and adds pseq 3.
    out = cls_changelog.append(ctx, {"epoch": 1, "records": [
        rec("mds0#1", 1), rec("mds0#1", 2), rec("mds0#1", 3)]})
    assert out == {"appended": 1, "skipped": 2, "last_seq": 2}
    obj2, _ = ctx.outcome()
    listed = cls_changelog.list_records(ctx_for(obj2), {})
    assert [e["pseq"] for e in listed["entries"]] == [1, 2, 3]
    assert [e["seq"] for e in listed["entries"]] == [0, 1, 2]


def test_append_tracks_pseq_per_producer():
    obj = shard_with([rec("mds0#1", 5)])
    ctx = ctx_for(obj)
    # A different incarnation of the same daemon restarts at pseq 1.
    out = cls_changelog.append(
        ctx, {"epoch": 1, "records": [rec("mds0#2", 1)]})
    assert out["appended"] == 1 and out["skipped"] == 0


def test_append_is_epoch_fenced():
    obj = shard_with([rec("mds0#1", 1)], epoch=3)
    with pytest.raises(StaleEpoch):
        cls_changelog.append(
            ctx_for(obj), {"epoch": 2, "records": [rec("mds0#1", 2)]})
    with pytest.raises(InvalidArgument):
        cls_changelog.append(
            ctx_for(obj), {"records": [rec("mds0#1", 2)]})


def test_append_requires_seal_at_exact_epoch():
    """Seal-before-write: an unsealed (impostor) shard refuses.

    A remapped empty primary fabricates a shard object with sealed
    epoch 0; accepting a higher-epoch append there would fork the
    stream's history.  The rejection is retryable, not fencing.
    """
    with pytest.raises(TryAgain):
        cls_changelog.append(
            ctx_for(None), {"epoch": 1, "records": [rec("mds0#1", 1)]})
    obj = shard_with([rec("mds0#1", 1)], epoch=3)
    with pytest.raises(TryAgain):
        cls_changelog.append(
            ctx_for(obj), {"epoch": 4, "records": [rec("mds0#1", 2)]})
    with pytest.raises(TryAgain):
        cls_changelog.trim(ctx_for(obj), {"epoch": 4, "to_seq": 0})


def test_seal_rejects_stale_and_returns_last_seq():
    obj = shard_with([rec("mds0#1", 1), rec("mds0#1", 2)], epoch=2)
    ctx = ctx_for(obj)
    with pytest.raises(StaleEpoch):
        cls_changelog.seal(ctx, {"epoch": 2})
    out = cls_changelog.seal(ctx, {"epoch": 3})
    assert out["last_seq"] == 1


# ----------------------------------------------------------------------
# list: pagination bounds
# ----------------------------------------------------------------------
def test_list_paginates_by_from_seq():
    obj = shard_with([rec("mds0#1", i) for i in range(1, 11)])
    page1 = cls_changelog.list_records(ctx_for(obj), {"max": 4})
    assert [e["seq"] for e in page1["entries"]] == [0, 1, 2, 3]
    assert page1["truncated"] and page1["cursor"] == 3
    page2 = cls_changelog.list_records(
        ctx_for(obj), {"from_seq": page1["cursor"], "max": 4})
    assert [e["seq"] for e in page2["entries"]] == [4, 5, 6, 7]
    page3 = cls_changelog.list_records(
        ctx_for(obj), {"from_seq": page2["cursor"], "max": 4})
    assert [e["seq"] for e in page3["entries"]] == [8, 9]
    assert not page3["truncated"]


def test_list_clamps_max():
    obj = shard_with([rec("mds0#1", i) for i in range(1, 301)])
    out = cls_changelog.list_records(ctx_for(obj), {"max": 100000})
    assert len(out["entries"]) == cls_changelog.MAX_LIST_ENTRIES
    assert out["truncated"]
    with pytest.raises(InvalidArgument):
        cls_changelog.list_records(ctx_for(obj), {"max": 0})


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
def test_cursor_set_is_monotone():
    ctx = ctx_for(None)
    assert cls_changelog.cursor_set(
        ctx, {"name": "audit", "seq": -1}) == {"seq": -1}
    assert cls_changelog.cursor_set(
        ctx, {"name": "audit", "seq": 7}) == {"seq": 7}
    # Regressions are ignored (a replayed ack cannot move it back).
    assert cls_changelog.cursor_set(
        ctx, {"name": "audit", "seq": 3}) == {"seq": 7}
    obj, _ = ctx.outcome()
    assert cls_changelog.cursor_get(
        ctx_for(obj), {"name": "audit"}) == {"seq": 7}
    assert cls_changelog.cursor_get(
        ctx_for(obj), {"name": "ghost"}) == {"seq": -1}
    listed = cls_changelog.cursor_list(ctx_for(obj), {})
    assert listed == {"cursors": {"audit": 7}}


# ----------------------------------------------------------------------
# trim: guarded by the slowest cursor
# ----------------------------------------------------------------------
def test_trim_refuses_without_cursors():
    obj = shard_with([rec("mds0#1", 1)])
    with pytest.raises(NotPermitted):
        cls_changelog.trim(ctx_for(obj), {"epoch": 1, "to_seq": 0})


def test_trim_cannot_pass_slowest_cursor():
    obj = shard_with([rec("mds0#1", i) for i in range(1, 7)])
    ctx = ctx_for(obj)
    cls_changelog.cursor_set(ctx, {"name": "fast", "seq": 5})
    cls_changelog.cursor_set(ctx, {"name": "slow", "seq": 2})
    with pytest.raises(NotPermitted):
        cls_changelog.trim(ctx, {"epoch": 1, "to_seq": 3})
    out = cls_changelog.trim(ctx, {"epoch": 1, "to_seq": 2})
    assert out == {"trimmed": 3}
    obj2, _ = ctx.outcome()
    state = cls_changelog.get_state(ctx_for(obj2), {})
    assert state["first_seq"] == 3 and state["last_seq"] == 5
    assert state["entries"] == 3
    assert state["cursors"] == {"fast": 5, "slow": 2}


def test_trim_is_epoch_fenced():
    obj = shard_with([rec("mds0#1", 1)], epoch=4)
    ctx = ctx_for(obj)
    cls_changelog.cursor_set(ctx, {"name": "c", "seq": 0})
    with pytest.raises(StaleEpoch):
        cls_changelog.trim(ctx, {"epoch": 3, "to_seq": 0})


# ----------------------------------------------------------------------
# cls_log pagination guard (satellite: bounded scans + from_key)
# ----------------------------------------------------------------------
def log_with(n):
    ctx = ctx_for(None, oid="log")
    for i in range(n):
        cls_log.add(ctx, {"payload": i, "ts": float(i)})
    obj, _ = ctx.outcome()
    return obj


def test_cls_log_list_clamps_max():
    obj = log_with(300)
    out = cls_log.list_entries(ctx_for(obj, oid="log"), {"max": 100000})
    assert len(out["entries"]) == cls_log.MAX_ENTRIES
    assert out["truncated"]
    with pytest.raises(InvalidArgument):
        cls_log.list_entries(ctx_for(obj, oid="log"), {"max": -5})


def test_cls_log_from_key_continuation():
    obj = log_with(10)
    page1 = cls_log.list_entries(ctx_for(obj, oid="log"), {"max": 6})
    assert [e["payload"] for e in page1["entries"]] == list(range(6))
    assert page1["truncated"]
    page2 = cls_log.list_entries(
        ctx_for(obj, oid="log"),
        {"max": 6, "from_key": page1["cursor"]})
    assert [e["payload"] for e in page2["entries"]] == [6, 7, 8, 9]
    assert not page2["truncated"]
    # Legacy "start" alias still works.
    legacy = cls_log.list_entries(
        ctx_for(obj, oid="log"),
        {"max": 6, "start": page1["cursor"]})
    assert legacy["entries"] == page2["entries"]
