"""Unit tests: the snapshot object class."""

import pytest

from repro.errors import AlreadyExists, InvalidArgument, NotFound
from repro.objclass.bundled import register_all
from repro.objclass.context import MethodContext
from repro.objclass.registry import ClassRegistry


@pytest.fixture()
def reg():
    registry = ClassRegistry()
    register_all(registry)
    return registry


def snap(reg, ctx, method, **args):
    return reg.call("snapshot", method, ctx, args)


def test_snapshot_and_rollback_restores_everything(reg):
    ctx = MethodContext(None, "o")
    ctx.write_full(b"version-one")
    ctx.omap_set("row", 1)
    ctx.xattr_set("meta", "a")
    snap(reg, ctx, "create", name="v1")
    # Mutate everything.
    ctx.write_full(b"version-two, longer")
    ctx.omap_set("row", 2)
    ctx.omap_set("extra", True)
    ctx.xattr_set("meta", "b")
    snap(reg, ctx, "rollback", name="v1")
    assert ctx.read() == b"version-one"
    assert ctx.omap_get("row") == 1
    assert not ctx.omap_has("extra")
    assert ctx.xattr_get("meta") == "a"


def test_snapshots_are_immune_to_later_snapshots(reg):
    ctx = MethodContext(None, "o")
    ctx.write_full(b"a")
    snap(reg, ctx, "create", name="s1")
    ctx.write_full(b"b")
    snap(reg, ctx, "create", name="s2")
    assert snap(reg, ctx, "list")["snapshots"] == ["s1", "s2"]
    snap(reg, ctx, "rollback", name="s1")
    # Rolling back does not destroy other snapshots.
    assert snap(reg, ctx, "list")["snapshots"] == ["s1", "s2"]
    snap(reg, ctx, "rollback", name="s2")
    assert ctx.read() == b"b"


def test_duplicate_and_missing_names(reg):
    ctx = MethodContext(None, "o")
    snap(reg, ctx, "create", name="x")
    with pytest.raises(AlreadyExists):
        snap(reg, ctx, "create", name="x")
    with pytest.raises(NotFound):
        snap(reg, ctx, "rollback", name="ghost")
    snap(reg, ctx, "remove", name="x")
    with pytest.raises(NotFound):
        snap(reg, ctx, "remove", name="x")


def test_bad_snapshot_names_rejected(reg):
    ctx = MethodContext(None, "o")
    with pytest.raises(InvalidArgument):
        snap(reg, ctx, "create", name="")
    with pytest.raises(InvalidArgument):
        snap(reg, ctx, "create", name="dotted.name")


def test_rollback_composes_transactionally(reg):
    """A failing op after rollback aborts the rollback too (op-list
    atomicity at the OSD layer)."""
    from repro.rados.ops import apply_ops

    _, obj, _ = apply_ops(None, "o", [
        {"op": "write_full", "data": b"good"},
        {"op": "exec", "cls": "snapshot", "method": "create",
         "args": {"name": "s"}},
        {"op": "write_full", "data": b"bad"},
    ], reg)
    with pytest.raises(NotFound):
        apply_ops(obj, "o", [
            {"op": "exec", "cls": "snapshot", "method": "rollback",
             "args": {"name": "s"}},
            {"op": "omap_get", "key": "no-such-key"},
        ], reg)
    # Rollback never landed: object still reads "bad".
    results, _, _ = apply_ops(obj, "o", [{"op": "read"}], reg)
    assert results[0] == b"bad"
