"""Unit tests for the centralized cluster log.

Entry validation/formatting/severity filtering, MonitorStore append
ordering and capacity truncation, and the mgr's health-transition
entries landing in the log.
"""

import pytest

from repro.monitor.cluster_log import (
    DEBUG,
    ERROR,
    INFO,
    WARN,
    ClusterLogEntry,
    max_severity,
    severity_level,
)
from repro.monitor.store import MonitorStore


def entry(t, severity=INFO, who="mds0", message="m"):
    return ClusterLogEntry(time=t, severity=severity, who=who,
                           message=message)


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
def test_entry_rejects_unknown_severity():
    with pytest.raises(ValueError):
        ClusterLogEntry(time=0.0, severity="FATAL", who="x", message="m")


def test_severity_ladder():
    assert (severity_level(DEBUG) < severity_level(INFO)
            < severity_level(WARN) < severity_level(ERROR))
    with pytest.raises(ValueError):
        severity_level("NOPE")
    assert max_severity(INFO, ERROR, WARN) == ERROR
    assert max_severity(DEBUG) == DEBUG
    with pytest.raises(ValueError):
        max_severity()


def test_at_least_filtering():
    entries = [entry(0.0, DEBUG), entry(1.0, INFO), entry(2.0, WARN),
               entry(3.0, ERROR)]
    warnings = [e for e in entries if e.at_least(WARN)]
    assert [e.severity for e in warnings] == [WARN, ERROR]
    assert all(e.at_least(DEBUG) for e in entries)


def test_entry_round_trip_and_format():
    e = entry(12.5, WARN, who="mgr0", message="OSD_DOWN: 1 osds down")
    assert ClusterLogEntry.from_dict(e.to_dict()) == e
    line = e.format()
    assert "WRN" in line and "[mgr0]" in line
    assert "OSD_DOWN: 1 osds down" in line


# ----------------------------------------------------------------------
# MonitorStore: ordering and truncation
# ----------------------------------------------------------------------
def test_store_append_preserves_order():
    store = MonitorStore(["mon0"])
    for i in range(10):
        store.apply_batch([{"op": "log",
                            "entry": entry(float(i),
                                           message=f"m{i}").to_dict()}])
    times = [e.time for e in store.cluster_log]
    assert times == sorted(times) and len(times) == 10
    tail = store.log_tail(3)
    assert [e.message for e in tail] == ["m7", "m8", "m9"]


def test_store_truncates_at_capacity():
    store = MonitorStore(["mon0"])
    limit = 40
    store.MAX_LOG_ENTRIES = limit
    total = limit + 1  # first append past the cap triggers the halving
    for i in range(total):
        store.apply_batch([{"op": "log",
                            "entry": entry(float(i)).to_dict()}])
    # Oldest half dropped, newest entries intact.
    assert len(store.cluster_log) == total - (limit + 1) // 2
    assert store.cluster_log[-1].time == float(total - 1)
    assert store.cluster_log[0].time > 0.0


# ----------------------------------------------------------------------
# Health transitions land in the cluster log
# ----------------------------------------------------------------------
def test_mgr_health_transition_reaches_cluster_log():
    from repro.core.cluster import MalacologyCluster

    cluster = MalacologyCluster.build(osds=2, mdss=1, mons=3, seed=17,
                                      mgr=True)
    cluster.run(6.0)  # a few scrapes: steady HEALTH_OK, no log traffic
    leader = cluster.leader_monitor()
    before = [e for e in leader.store.cluster_log if e.who == "mgr0"]
    assert before == []  # transitions only: healthy runs stay silent

    cluster.osds[0].crash()
    cluster.run(20.0)
    assert cluster.health()["status"] != "HEALTH_OK"
    leader = cluster.leader_monitor()
    mgr_entries = [e for e in leader.store.cluster_log
                   if e.who == "mgr0"]
    assert mgr_entries, "health transition should be logged centrally"
    assert any(e.at_least(WARN) and "osd0" in e.message
               for e in mgr_entries)
