"""Unit tests: daemon ticker semantics, broadcast, epoch piggybacking."""

import pytest

from repro.msg import Daemon, Envelope
from repro.sim import FixedLatency, Network, Simulator, Timeout


def make_net(seed=9, latency=0.001):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(latency))
    return sim, net


def test_ticker_with_generator_body_never_overlaps():
    sim, net = make_net()
    d = Daemon(sim, net, "d")
    active = [0]
    peaks = []

    def work():
        active[0] += 1
        peaks.append(active[0])
        yield Timeout(2.5)  # longer than the tick interval
        active[0] -= 1

    d.every(1.0, work)
    sim.run(until=12.0)
    # Ticks wait for the previous body: concurrency never exceeds 1.
    assert max(peaks) == 1
    # And the effective period is body-bound (~3.5 s), not 1 s.
    assert 2 <= len(peaks) <= 4


def test_ticker_jitter_spreads_ticks():
    sim, net = make_net()
    d = Daemon(sim, net, "d")
    times = []
    d.every(1.0, lambda: times.append(sim.now), jitter=0.5)
    sim.run(until=20.0)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(1.0 <= g <= 1.5 + 1e-9 for g in gaps)
    assert max(gaps) - min(gaps) > 0.05  # jitter actually varies


def test_broadcast_reaches_every_target():
    sim, net = make_net()
    src = Daemon(sim, net, "src")
    received = []

    class Sink(Daemon):
        def __init__(self, name):
            super().__init__(sim, net, name)
            self.register_handler(
                "evt", lambda s, p: received.append((self.name, p)))

    sinks = [Sink(f"sink{i}") for i in range(3)]
    src.broadcast([s.name for s in sinks], "evt", "hello")
    sim.run()
    assert sorted(received) == [("sink0", "hello"), ("sink1", "hello"),
                                ("sink2", "hello")]


def test_epoch_stamping_and_observation_hooks():
    sim, net = make_net()

    class Stamper(Daemon):
        def stamp_epochs(self, env):
            env.epochs["osd"] = 42

    class Observer(Daemon):
        def __init__(self, name):
            super().__init__(sim, net, name)
            self.seen = []
            self.register_handler("ping", lambda s, p: "pong")

        def observe_epochs(self, env):
            self.seen.append(dict(env.epochs))

    stamper = Stamper(sim, net, "stamper")
    observer = Observer("observer")
    stamper.cast("observer", "ping")
    sim.run()
    assert observer.seen == [{"osd": 42}]


def test_dead_daemon_drops_inbound_silently():
    sim, net = make_net()
    d = Daemon(sim, net, "d")
    d.register_handler("x", lambda s, p: pytest.fail("should not run"))
    d.crash()
    other = Daemon(sim, net, "other")
    other.cast("d", "x")
    sim.run()


def test_restart_is_idempotent_and_crash_is_too():
    sim, net = make_net()
    d = Daemon(sim, net, "d")
    d.crash()
    d.crash()  # no-op
    assert not d.alive
    d.restart()
    d.restart()  # no-op
    assert d.alive


def test_error_reply_for_unhandled_method_names_the_daemon():
    sim, net = make_net()
    Daemon(sim, net, "server")
    client = Daemon(sim, net, "client")
    fut = client.call("server", "nope", timeout=1.0)
    sim.run()
    assert fut.failed
    assert "server" in str(fut.error)
