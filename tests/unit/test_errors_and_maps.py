"""Unit tests: error wire round-trips and cluster map behaviour."""

import pytest

from repro.errors import (
    AlreadyExists,
    MalacologyError,
    NotFound,
    StaleEpoch,
    TryAgain,
    WrongMDS,
    error_from_code,
)
from repro.monitor.maps import (
    MDSMap,
    MonMap,
    OSDMap,
    map_from_dict,
)


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def test_error_round_trips_through_wire_codes():
    for cls in (NotFound, AlreadyExists, StaleEpoch, TryAgain):
        err = cls("something happened")
        rebuilt = error_from_code(err.code, str(err))
        assert type(rebuilt) is cls
        assert str(rebuilt) == "something happened"


def test_unknown_code_degrades_to_base_error():
    rebuilt = error_from_code("EWHATEVER", "msg")
    assert type(rebuilt) is MalacologyError


def test_wrong_mds_preserves_rank_across_the_wire():
    err = WrongMDS(3)
    rebuilt = error_from_code(err.code, str(err))
    assert isinstance(rebuilt, WrongMDS)
    assert rebuilt.rank == 3


def test_wrong_mds_garbled_message_degrades_gracefully():
    rebuilt = error_from_code(WrongMDS.code, "garbage")
    assert isinstance(rebuilt, WrongMDS)
    assert rebuilt.rank == 0


# ----------------------------------------------------------------------
# MonMap
# ----------------------------------------------------------------------
def test_monmap_quorum_and_ranks():
    m = MonMap(epoch=1, mons=["c", "a", "b"])
    assert m.mons == ["a", "b", "c"]  # sorted: ranks are stable
    assert m.quorum_size == 2
    assert m.rank_of("a") == 0
    with pytest.raises(NotFound):
        m.rank_of("zz")


def test_monmap_quorum_sizes():
    assert MonMap(mons=["a"]).quorum_size == 1
    assert MonMap(mons=list("abcde")).quorum_size == 3


# ----------------------------------------------------------------------
# OSDMap
# ----------------------------------------------------------------------
def test_osdmap_membership_queries():
    m = OSDMap(epoch=3, osds={"osd0": "up", "osd1": "down"},
               pools={"p": {"size": 2, "pg_num": 8}})
    assert m.up_osds() == ["osd0"]
    assert m.all_osds() == ["osd0", "osd1"]
    assert m.is_up("osd0") and not m.is_up("osd1")
    assert not m.is_up("ghost")
    assert m.pool("p")["pg_num"] == 8
    with pytest.raises(NotFound):
        m.pool("ghost")


def test_map_round_trip_preserves_everything():
    m = OSDMap(epoch=9, osds={"osd0": "up"},
               pools={"p": {"size": 3, "pg_num": 4}},
               interfaces={"cls": {"version": 2, "source": "x",
                                   "category": "other"}})
    again = map_from_dict(m.to_dict())
    assert isinstance(again, OSDMap)
    assert again.to_dict() == m.to_dict()


# ----------------------------------------------------------------------
# MDSMap
# ----------------------------------------------------------------------
def test_mdsmap_owner_longest_prefix():
    m = MDSMap(subtrees={"/": 0, "/a": 1, "/a/b": 2})
    assert m.owner_of("/") == 0
    assert m.owner_of("/zzz") == 0
    assert m.owner_of("/a") == 1
    assert m.owner_of("/a/x") == 1
    assert m.owner_of("/a/b") == 2
    assert m.owner_of("/a/b/deep/er") == 2
    # Component-wise: /ab is NOT under /a.
    assert m.owner_of("/ab") == 0


def test_mdsmap_rank_queries_and_round_trip():
    m = MDSMap(epoch=2, ranks={0: "mds0", 1: "mds1"},
               state={"mds0": "up", "mds1": "up"},
               balancer_version="v7",
               lease_policy={"mode": "quota", "quota": 10},
               routing_mode="proxy",
               subtrees={"/": 0, "/hot": 1})
    assert m.rank_holder(1) == "mds1"
    assert m.rank_holder(9) is None
    assert m.rank_of("mds1") == 1
    assert m.rank_of("ghost") is None
    assert m.active_ranks() == [0, 1]
    again = map_from_dict(m.to_dict())
    assert isinstance(again, MDSMap)
    assert again.to_dict() == m.to_dict()


def test_map_from_dict_rejects_unknown_kind():
    from repro.errors import InvalidArgument

    with pytest.raises(InvalidArgument):
        map_from_dict({"kind": "martian", "epoch": 1})


def test_maps_are_value_copies():
    m = OSDMap(epoch=1, osds={"osd0": "up"},
               pools={"p": {"size": 2, "pg_num": 8}})
    clone = m.copy()
    clone.osds["osd1"] = "up"
    clone.pools["p"]["size"] = 99
    assert "osd1" not in m.osds
    assert m.pools["p"]["size"] == 2
