"""Unit tests: the failure injector's fault planes.

Covers the loss-rate wildcard resolution order, directional
partitions, the fault log, the chaos hook lifecycle (duplication /
reordering / corruption), gray-failure slowdowns, and the determinism
pin on the dedicated ``failures`` RNG streams.
"""

import pytest

from repro.sim import FixedLatency, Network, ScaledLatency, Simulator
from repro.sim.failure import FailureInjector


class Sink:
    def __init__(self, name, sim):
        self.name = name
        self.sim = sim
        self.seen = []

    def deliver(self, env):
        self.seen.append((self.sim.now, env))


def make_net(seed=1, latency=0.001):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=FixedLatency(latency))
    a, b = Sink("a", sim), Sink("b", sim)
    net.register(a)
    net.register(b)
    return sim, net, a, b


class FakeEnvelope:
    """Duck-typed envelope: the sim layer only looks at ``kind``."""

    def __init__(self, kind="cast", payload=None, msg_id=0):
        self.kind = kind
        self.payload = payload if payload is not None else {"x": 1}
        self.msg_id = msg_id


# ----------------------------------------------------------------------
# Loss rates and wildcard resolution
# ----------------------------------------------------------------------
def test_loss_wildcard_resolution_order():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    # Global wildcard drops everything ...
    inj.set_loss_everywhere(1.0)
    # ... but the exact pair is more specific and wins.
    inj.set_loss("a", "b", 0.0)
    # set_loss(rate=0) removes the entry rather than storing 0.0, so
    # resolution has to fall through to the wildcard: re-add the pair.
    inj._drop_rates[("a", "b")] = 0.0
    assert inj._should_drop("a", "b") is False
    assert inj._should_drop("b", "a") is True


def test_loss_per_endpoint_wildcards():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    inj.set_loss("a", "*", 1.0)
    assert inj._should_drop("a", "b") is True
    assert inj._should_drop("b", "a") is False
    inj.clear_loss()
    inj.set_loss("*", "b", 1.0)
    assert inj._should_drop("a", "b") is True
    assert inj._should_drop("a", "a") is False
    # src-side wildcard is consulted before dst-side.
    inj.set_loss("a", "*", 0.0)
    inj._drop_rates[("a", "*")] = 0.0
    assert inj._should_drop("a", "b") is False


def test_loss_rate_validation_and_logging():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    with pytest.raises(ValueError):
        inj.set_loss("a", "b", 1.5)
    inj.set_loss("a", "b", 1.0)
    net.send("a", "b", FakeEnvelope())
    sim.run()
    assert b.seen == []
    assert net.drops_by_cause["drop_hook"] == 1
    assert [(kind, what) for _t, kind, what in inj.log] \
        == [("drop", "a->b")]


def test_failures_stream_is_deterministic():
    """The loss draws come from the dedicated ``failures`` stream, so
    two runs with the same seed drop the same messages."""
    outcomes = []
    for _ in range(2):
        sim, net, a, b = make_net(seed=42)
        inj = FailureInjector(sim, net)
        inj.set_loss("a", "b", 0.5)
        for _i in range(50):
            net.send("a", "b", FakeEnvelope())
        sim.run()
        outcomes.append(len(b.seen))
    assert outcomes[0] == outcomes[1]
    assert 0 < outcomes[0] < 50  # the rate actually did something


# ----------------------------------------------------------------------
# Flap and partitions
# ----------------------------------------------------------------------
def test_flap_validates_ordering():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)

    class Crashy:
        name = "d"

        def crash(self):
            pass

        def restart(self):
            pass

    with pytest.raises(ValueError):
        inj.flap(Crashy(), 5.0, 5.0)


def test_partition_heal_log_ordering():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    inj.partition_at(1.0, "a", "b")
    inj.heal_at(2.0, "a", "b")
    sim.run()
    assert [(t, kind, what) for t, kind, what in inj.log] \
        == [(1.0, "partition", "a|b"), (2.0, "heal", "a|b")]
    assert not net.partitioned("a", "b")


def test_oneway_partition_blocks_one_direction():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    inj.partition_oneway_at(0.0, "a", "b")
    sim.run(0.1)
    net.send("a", "b", FakeEnvelope())
    net.send("b", "a", FakeEnvelope())
    sim.run()
    assert b.seen == []
    assert len(a.seen) == 1
    assert net.drops_by_cause["partition"] == 1
    assert ("partition", "a->b") in [(k, w) for _t, k, w in inj.log]
    inj.heal_oneway_at(sim.now, "a", "b")
    sim.run()
    assert not net.partitioned("a", "b")


def test_heal_all_clears_every_block():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    inj.partition_at(0.0, "a", "b")
    inj.partition_oneway_at(0.0, "b", "a")
    inj.heal_all_at(1.0)
    sim.run()
    assert not net.partitioned("a", "b")
    assert not net.partitioned("b", "a")
    assert (1.0, "heal", "*") in inj.log


# ----------------------------------------------------------------------
# Gray failures
# ----------------------------------------------------------------------
def test_slowdown_scales_latency_and_unslow_restores():
    sim, net, a, b = make_net(latency=0.01)
    inj = FailureInjector(sim, net)
    inj.slow_at(0.0, "b", 10.0)
    sim.run(0.001)
    t0 = sim.now
    net.send("a", "b", FakeEnvelope())
    sim.run()
    slow_delay = b.seen[0][0] - t0
    assert slow_delay == pytest.approx(0.1, rel=0.01)
    inj.clear_slowdowns()
    t1 = sim.now
    net.send("a", "b", FakeEnvelope())
    sim.run()
    assert b.seen[1][0] - t1 == pytest.approx(0.01, rel=0.01)
    kinds = [k for _t, k, _w in inj.log]
    assert kinds == ["slow", "unslow"]
    with pytest.raises(ValueError):
        inj.slow_at(0.0, "b", 0.0)


def test_scaled_latency_validates_factor():
    base = FixedLatency(0.002)
    sim = Simulator(seed=1)
    r = sim.rng("t")
    assert ScaledLatency(base, 3.0).sample("a", "b", r) \
        == pytest.approx(0.006)
    with pytest.raises(ValueError):
        ScaledLatency(base, 0.0)


def test_pause_resume_freezes_tickers():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    calls = []

    class Ticky:
        name = "t"

        def pause_tickers(self):
            calls.append("pause")

        def resume_tickers(self):
            calls.append("resume")

    d = Ticky()
    inj.pause_at(1.0, d)
    inj.resume_at(2.0, d)
    sim.run()
    assert calls == ["pause", "resume"]
    assert [(k, w) for _t, k, w in inj.log] \
        == [("pause", "t"), ("resume", "t")]


# ----------------------------------------------------------------------
# Message chaos: duplication / reordering / corruption
# ----------------------------------------------------------------------
def test_chaos_hook_installed_only_while_active():
    sim, net, a, b = make_net()
    inj = FailureInjector(sim, net)
    assert net.chaos_hook is None
    inj.set_duplication(0.5)
    assert net.chaos_hook is not None
    inj.set_duplication(0.0)
    assert net.chaos_hook is None
    inj.set_reorder(0.2)
    inj.set_corruption(0.1)
    inj.clear_chaos()
    assert net.chaos_hook is None
    for bad in (-0.1, 1.1):
        with pytest.raises(ValueError):
            inj.set_duplication(bad)
        with pytest.raises(ValueError):
            inj.set_reorder(bad)
        with pytest.raises(ValueError):
            inj.set_corruption(bad)


def test_duplication_copies_casts_but_never_requests():
    sim, net, a, b = make_net(seed=7)
    inj = FailureInjector(sim, net)
    inj.set_duplication(1.0)
    net.send("a", "b", FakeEnvelope(kind="cast"))
    net.send("a", "b", FakeEnvelope(kind="request"))
    sim.run()
    assert len(b.seen) == 3  # cast twice, request once
    assert net.messages_duplicated == 1
    # The duplicate is a distinct object (deep copy), not an alias.
    twins = [env for _t, env in b.seen if env.kind == "cast"]
    assert twins[0] is not twins[1]


def test_detected_corruption_degrades_to_loss():
    sim, net, a, b = make_net(seed=8)
    inj = FailureInjector(sim, net)
    inj.set_corruption(1.0, detected=True)
    net.send("a", "b", FakeEnvelope())
    sim.run()
    assert b.seen == []
    assert net.messages_corrupted == 1
    assert net.drops_by_cause["chaos"] == 1


def test_undetected_corruption_mutates_payload():
    sim, net, a, b = make_net(seed=9)
    inj = FailureInjector(sim, net)
    inj.set_corruption(1.0, detected=False)
    original = FakeEnvelope(payload={"value": 7})
    net.send("a", "b", original)
    sim.run()
    assert len(b.seen) == 1
    delivered = b.seen[0][1]
    assert delivered.payload == {"value": 6}  # one bit flipped
    assert original.payload == {"value": 7}   # sender copy untouched


def test_reorder_delays_but_delivers():
    sim, net, a, b = make_net(seed=10, latency=0.01)
    inj = FailureInjector(sim, net)
    inj.set_reorder(1.0, spread=4.0)
    net.send("a", "b", FakeEnvelope())
    sim.run()
    assert len(b.seen) == 1
    assert b.seen[0][0] > 0.01  # strictly later than base latency
    assert b.seen[0][0] <= 0.01 * 5 + 1e-9


def test_mangle_falls_back_to_msg_id():
    env = FakeEnvelope(payload={})
    mangled = FailureInjector._mangle(env)
    assert mangled.msg_id == env.msg_id ^ 1
