"""Unit tests for MDS components: inodes, caps, metrics, namespace."""

import pytest

from repro.errors import AlreadyExists, InvalidArgument, NotFound
from repro.mds.capability import (
    BEST_EFFORT,
    DELAY,
    LeasePolicy,
    Locker,
    QUOTA,
    ROUND_TRIP,
)
from repro.mds.inode import (
    DIR,
    FILE,
    Inode,
    InoAllocator,
    SequencerType,
    file_type_registry,
)
from repro.mds.metrics import DecayCounter, LoadTracker
from repro.mds.namespace import (
    NamespaceCache,
    basename,
    components,
    parent_of,
    under,
    validate_path,
)


# ----------------------------------------------------------------------
# Inodes / file types
# ----------------------------------------------------------------------
def test_sequencer_type_next_is_gapless():
    inode = Inode(10, FILE, file_type="sequencer")
    positions = [inode.execute("next", {}) for _ in range(5)]
    assert positions == [0, 1, 2, 3, 4]
    assert inode.execute("read", {}) == 5


def test_sequencer_flush_is_monotonic():
    inode = Inode(10, FILE, file_type="sequencer")
    inode.merge_flush({"tail": 50})
    assert inode.embedded["tail"] == 50
    inode.merge_flush({"tail": 20})  # stale flush must not rewind
    assert inode.embedded["tail"] == 50


def test_inode_round_trip_serialization():
    inode = Inode(7, FILE, file_type="sequencer")
    inode.execute("next", {})
    clone = Inode.from_dict(inode.to_dict())
    assert clone.embedded == {"tail": 1}
    assert clone.ino == 7 and clone.version == inode.version


def test_ino_allocator_ranges_are_disjoint():
    a = InoAllocator(0)
    b = InoAllocator(1)
    a_set = {a.allocate() for _ in range(1000)}
    b_set = {b.allocate() for _ in range(1000)}
    assert not a_set & b_set


def test_unknown_file_type_rejected():
    with pytest.raises(NotFound):
        Inode(1, FILE, file_type="hologram")


# ----------------------------------------------------------------------
# Lease policies
# ----------------------------------------------------------------------
def test_lease_policy_validation():
    assert LeasePolicy.from_dict({}).mode == BEST_EFFORT
    with pytest.raises(InvalidArgument):
        LeasePolicy(mode="bogus")
    with pytest.raises(InvalidArgument):
        LeasePolicy(quota=-1)
    assert not LeasePolicy(mode=ROUND_TRIP).cacheable
    assert LeasePolicy(mode=QUOTA, quota=10).cacheable


# ----------------------------------------------------------------------
# Locker
# ----------------------------------------------------------------------
def _policy():
    return LeasePolicy(mode=BEST_EFFORT)


def test_locker_exclusive_grant_and_queueing():
    lk = Locker()
    cap_a = lk.try_grant(1, "a", 0.0, _policy())
    assert cap_a is not None
    assert lk.try_grant(1, "b", 0.0, _policy()) is None
    # Same holder re-grants.
    assert lk.try_grant(1, "a", 1.0, _policy()) is cap_a


def test_locker_release_grants_next_in_fifo_order():
    lk = Locker()
    cap = lk.try_grant(1, "a", 0.0, _policy())
    lk.try_grant(1, "b", 0.0, _policy())
    lk.try_grant(1, "c", 0.0, _policy())
    assert lk.release(1, "a", cap.seq)
    assert lk.next_waiter(1) == "b"
    assert lk.next_waiter(1) == "c"
    assert lk.next_waiter(1) is None


def test_locker_stale_release_ignored():
    lk = Locker()
    cap = lk.try_grant(1, "a", 0.0, _policy())
    assert not lk.release(1, "b", cap.seq)
    assert not lk.release(1, "a", cap.seq + 99)
    assert lk.holder_of(1) is cap


def test_locker_needs_revoke_only_with_waiters():
    lk = Locker()
    lk.try_grant(1, "a", 0.0, _policy())
    assert lk.needs_revoke(1) is None
    lk.try_grant(1, "b", 0.0, _policy())
    cap = lk.needs_revoke(1)
    assert cap is not None and cap.client == "a"
    lk.mark_revoking(1)
    assert lk.needs_revoke(1) is None  # one revoke in flight


def test_locker_drop_client_frees_all_its_caps():
    lk = Locker()
    lk.try_grant(1, "a", 0.0, _policy())
    lk.try_grant(2, "a", 0.0, _policy())
    lk.try_grant(1, "b", 0.0, _policy())
    freed = lk.drop_client("a")
    assert sorted(freed) == [1, 2]
    assert lk.holder_of(1) is None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_decay_counter_halves_per_halflife():
    c = DecayCounter(halflife=2.0)
    c.hit(0.0, 8.0)
    assert c.get(2.0) == pytest.approx(4.0)
    assert c.get(4.0) == pytest.approx(2.0)


def test_load_tracker_popularity_and_hottest():
    t = LoadTracker(halflife=10.0)
    for _ in range(10):
        t.record_request(0.0, "/hot", 1e-4)
    t.record_request(0.0, "/cold", 1e-4)
    hottest = t.hottest_inodes(0.0, limit=1)
    assert hottest[0][0] == "/hot"
    assert t.inode_popularity(0.0, "/hot") > t.inode_popularity(
        0.0, "/cold")


def test_load_tracker_cpu_util_bounded():
    t = LoadTracker(halflife=5.0)
    for i in range(1000):
        t.record_request(0.0, "/x", 1.0)
    assert t.cpu_util(0.0) == 1.0
    assert t.cpu_util(1e6) == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# Namespace
# ----------------------------------------------------------------------
def test_path_validation_and_helpers():
    assert validate_path("//a//b/") == "/a/b"
    assert components("/a/b") == ["a", "b"]
    assert parent_of("/a/b") == "/a"
    assert parent_of("/a") == "/"
    assert basename("/a/b") == "b"
    assert under("/a/b", "/a")
    assert not under("/ab", "/a")
    with pytest.raises(InvalidArgument):
        validate_path("relative/path")
    with pytest.raises(InvalidArgument):
        validate_path("/a/../b")


def test_namespace_add_requires_parent_dir():
    ns = NamespaceCache()
    ns.add("/", Inode(1, DIR))
    with pytest.raises(NotFound):
        ns.add("/a/b", Inode(2, DIR))
    ns.add("/a", Inode(3, DIR))
    ns.add("/a/b", Inode(4, FILE))
    assert ns.listdir("/a") == ["b"]
    with pytest.raises(AlreadyExists):
        ns.add("/a", Inode(5, DIR))


def test_namespace_remove_refuses_nonempty_dir():
    ns = NamespaceCache()
    ns.add("/", Inode(1, DIR))
    ns.add("/d", Inode(2, DIR))
    ns.add("/d/f", Inode(3, FILE))
    with pytest.raises(InvalidArgument):
        ns.remove("/d")
    ns.remove("/d/f")
    ns.remove("/d")
    assert not ns.has("/d")


def test_namespace_subtree_extract_install_round_trip():
    ns = NamespaceCache()
    ns.add("/", Inode(1, DIR))
    ns.add("/keep", Inode(2, FILE))
    ns.add("/move", Inode(3, DIR))
    ns.add("/move/x", Inode(4, FILE))
    payload = ns.extract_subtree("/move")
    assert sorted(payload) == ["/move", "/move/x"]
    assert not ns.has("/move")
    # A remote dentry remains: the parent still lists the migrated
    # child even though its state and authority moved away.
    assert ns.listdir("/") == ["keep", "move"]

    other = NamespaceCache()
    other.add("/", Inode(1, DIR))
    other.install_subtree(payload)
    assert other.has("/move/x")
    assert other.listdir("/move") == ["x"]
