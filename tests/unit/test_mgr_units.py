"""Unit tests for the mgr building blocks.

Time-series rings, health checks over synthetic samples, the
Prometheus exporter/parser round trip, and the Mantle audit trail —
all pure data structures, no simulator needed.
"""

from types import SimpleNamespace

import pytest

from repro.mgr.audit import MantleAuditTrail, merge_trails
from repro.mgr.health import (
    HEALTH_ERR,
    HEALTH_OK,
    HEALTH_WARN,
    CapRevokeStuckCheck,
    ClusterSample,
    DaemonUnreachableCheck,
    HealthReport,
    MdsLatencyRegressionCheck,
    OsdDownCheck,
    PaxosStallCheck,
    SequencerChurnCheck,
    SubtreeImbalanceCheck,
    default_checks,
    evaluate_health,
    worst_status,
)
from repro.mgr.prometheus import parse_prometheus_text, prometheus_export
from repro.mgr.timeseries import DaemonSeries, MetricSeries


# ----------------------------------------------------------------------
# MetricSeries
# ----------------------------------------------------------------------
def test_series_ring_drops_oldest():
    s = MetricSeries(capacity=4)
    for i in range(7):
        s.record(float(i), float(i * 10))
    assert len(s) == 4
    assert s.samples() == [(3.0, 30.0), (4.0, 40.0), (5.0, 50.0),
                           (6.0, 60.0)]
    assert s.oldest() == (3.0, 30.0)
    assert s.latest() == (6.0, 60.0)


def test_series_rejects_time_going_backwards():
    s = MetricSeries(capacity=4)
    s.record(5.0, 1.0)
    with pytest.raises(ValueError):
        s.record(4.0, 2.0)
    s.record(5.0, 3.0)  # equal timestamps are allowed


def test_series_delta_and_rate():
    s = MetricSeries(capacity=16)
    for t in range(11):
        s.record(float(t), float(t * 3))  # 3 events/s counter
    assert s.delta() == 30.0
    assert s.rate() == pytest.approx(3.0)
    assert s.delta(window=4.0) == 12.0
    assert s.rate(window=4.0) == pytest.approx(3.0)
    # Degenerate cases answer 0.0, not crash.
    empty = MetricSeries(capacity=4)
    assert empty.delta() == 0.0 and empty.rate() == 0.0
    single = MetricSeries(capacity=4)
    single.record(1.0, 99.0)
    assert single.rate() == 0.0


def test_series_mean_and_min_over_window():
    s = MetricSeries(capacity=16)
    for t, v in [(0.0, 10.0), (1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]:
        s.record(t, v)
    assert s.mean() == pytest.approx(5.5)
    assert s.mean(window=2.0) == pytest.approx(4.0)  # t in [1, 3]
    assert s.min_over() == 2.0
    assert s.min_over(window=1.0) == 4.0  # t in [2, 3]


def test_series_capacity_floor():
    with pytest.raises(ValueError):
        MetricSeries(capacity=1)


# ----------------------------------------------------------------------
# DaemonSeries: dump flattening
# ----------------------------------------------------------------------
def test_daemon_series_flattens_dump():
    ds = DaemonSeries(capacity=8)
    dump = {
        "counters": {"paxos.commit": 42},
        "gauges": {"pg.count": 16, "role": "leader", "up": True},
        "rates": {"rpc.rx": 10.5},
        "latency": {"rpc.mds_req": {"mean": 0.002, "count": 7,
                                    "max": 0.01, "sum": 0.014}},
    }
    ds.observe_dump(1.0, dump)
    assert ds.maybe("counter:paxos.commit").latest() == (1.0, 42.0)
    assert ds.maybe("gauge:pg.count").latest() == (1.0, 16.0)
    # Non-numeric and boolean gauges are state, not signal.
    assert ds.maybe("gauge:role") is None
    assert ds.maybe("gauge:up") is None
    assert ds.maybe("rate:rpc.rx").latest() == (1.0, 10.5)
    assert ds.maybe("latency:rpc.mds_req:mean").latest() == (1.0, 0.002)
    assert ds.maybe("latency:rpc.mds_req:count").latest() == (1.0, 7.0)
    assert ds.maybe("latency:rpc.mds_req:max").latest() == (1.0, 0.01)


# ----------------------------------------------------------------------
# Health checks on synthetic samples
# ----------------------------------------------------------------------
def _sample(**kwargs):
    return ClusterSample(time=kwargs.pop("time", 100.0), **kwargs)


def test_worst_status_ladder():
    assert worst_status([]) == HEALTH_OK
    assert worst_status([HEALTH_OK, HEALTH_WARN]) == HEALTH_WARN
    assert worst_status([HEALTH_WARN, HEALTH_ERR,
                         HEALTH_OK]) == HEALTH_ERR


def test_osd_down_check_names_the_osd():
    osdmap = SimpleNamespace(
        epoch=9, osds={"osd0": "up", "osd1": "down", "osd2": "up"})
    res = OsdDownCheck().evaluate(_sample(osdmap=osdmap))
    assert res.status == HEALTH_WARN
    assert "osd1" in res.summary
    assert res.detail["osds"] == ["osd1"]
    healthy = SimpleNamespace(epoch=9, osds={"osd0": "up"})
    assert OsdDownCheck().evaluate(_sample(osdmap=healthy)) is None
    assert OsdDownCheck().evaluate(_sample()) is None  # no map yet


def test_daemon_unreachable_check():
    res = DaemonUnreachableCheck().evaluate(
        _sample(failed={"osd2": "EHOSTDOWN: daemon osd2 is down"}))
    assert res.status == HEALTH_WARN
    assert "osd2" in res.summary
    assert DaemonUnreachableCheck().evaluate(_sample()) is None


def test_paxos_stall_check_requires_frozen_commits():
    sample = _sample(roles={"mon0": "mon"})
    series = sample.series_of("mon0")
    for t in range(90, 101):
        series.series("gauge:paxos.pending_txns").record(float(t), 2.0)
        series.series("counter:paxos.commit").record(float(t), 50.0)
    res = PaxosStallCheck(window=10.0).evaluate(sample)
    assert res is not None and res.status == HEALTH_ERR
    assert "mon0" in res.detail["monitors"]

    # Same pending backlog but commits advancing: live, not stalled.
    live = _sample(roles={"mon0": "mon"})
    s2 = live.series_of("mon0")
    for i, t in enumerate(range(90, 101)):
        s2.series("gauge:paxos.pending_txns").record(float(t), 2.0)
        s2.series("counter:paxos.commit").record(float(t), 50.0 + i)
    assert PaxosStallCheck(window=10.0).evaluate(live) is None


def test_mds_latency_regression_check():
    sample = _sample(roles={"mds0": "mds"})
    s = sample.series_of("mds0")
    # Long healthy history at 1 ms, then the recent window at 10 ms.
    for t in range(0, 90):
        s.series("latency:rpc.mds_req:mean").record(float(t), 0.001)
        s.series("latency:rpc.mds_req:count").record(float(t), t * 10.0)
    for t in range(90, 101):
        s.series("latency:rpc.mds_req:mean").record(float(t), 0.010)
        s.series("latency:rpc.mds_req:count").record(float(t), t * 10.0)
    res = MdsLatencyRegressionCheck(factor=3.0,
                                    recent=10.0).evaluate(sample)
    assert res is not None and res.status == HEALTH_WARN
    assert "mds0" in res.detail["mds"]

    # Without recent traffic the check refuses to judge.
    quiet = _sample(roles={"mds0": "mds"})
    q = quiet.series_of("mds0")
    for t in range(0, 101):
        q.series("latency:rpc.mds_req:mean").record(
            float(t), 0.001 if t < 90 else 0.010)
        q.series("latency:rpc.mds_req:count").record(float(t), 100.0)
    assert MdsLatencyRegressionCheck().evaluate(quiet) is None


def test_cap_revoke_stuck_check():
    sample = _sample(roles={"mds0": "mds"})
    s = sample.series_of("mds0")
    for t in range(92, 101, 2):
        s.series("gauge:caps.revoking").record(float(t), 1.0)
    res = CapRevokeStuckCheck(stuck_for=6.0).evaluate(sample)
    assert res is not None and res.status == HEALTH_WARN
    # A revoke that completed inside the window clears the check.
    ok = _sample(roles={"mds0": "mds"})
    s2 = ok.series_of("mds0")
    for t, v in [(92, 1.0), (94, 1.0), (96, 0.0), (98, 1.0), (100, 1.0)]:
        s2.series("gauge:caps.revoking").record(float(t), v)
    assert CapRevokeStuckCheck(stuck_for=6.0).evaluate(ok) is None


def test_sequencer_churn_check():
    sample = _sample(roles={"osd0": "osd", "osd1": "osd"})
    for osd in ("osd0", "osd1"):
        s = sample.series_of(osd)
        for t in range(90, 101):
            s.series("counter:objclass.zlog.seal").record(
                float(t), float(t))  # 1 seal/s each
    res = SequencerChurnCheck(max_rate=1.0).evaluate(sample)
    assert res is not None and res.status == HEALTH_WARN
    assert res.detail["seal_rate"] == pytest.approx(2.0)


def test_subtree_imbalance_check():
    sample = _sample(
        roles={"mds0": "mds", "mds1": "mds"},
        dumps={"mds0": {"gauges": {"mds.load": 400.0}},
               "mds1": {"gauges": {"mds.load": 10.0}}})
    res = SubtreeImbalanceCheck(ratio=4.0, min_load=50.0).evaluate(sample)
    assert res is not None and res.status == HEALTH_WARN
    assert res.detail["loads"]["mds0"] == 400.0
    # Low absolute load never alarms, however skewed.
    tiny = _sample(
        roles={"mds0": "mds", "mds1": "mds"},
        dumps={"mds0": {"gauges": {"mds.load": 40.0}},
               "mds1": {"gauges": {"mds.load": 1.0}}})
    assert SubtreeImbalanceCheck(ratio=4.0,
                                 min_load=50.0).evaluate(tiny) is None


def test_evaluate_health_aggregates_worst():
    sample = _sample(failed={"osd0": "EHOSTDOWN: down"})
    report = evaluate_health(default_checks(), sample)
    assert report.status == HEALTH_WARN
    assert report.check("DAEMON_UNREACHABLE") is not None
    clean = evaluate_health(default_checks(), _sample())
    assert clean.status == HEALTH_OK and clean.results == []
    assert HealthReport(0.0, []).to_dict()["checks"] == {}


# ----------------------------------------------------------------------
# Prometheus round trip
# ----------------------------------------------------------------------
def test_prometheus_export_round_trips():
    dumps = {
        "mon0": {"counters": {"paxos.commit": 42},
                 "gauges": {"mon.is_leader": 1, "state": "leader"},
                 "rates": {"rpc.rx": 12.25},
                 "latency": {"rpc.mon_req": {
                     "count": 7, "sum": 0.014, "mean": 0.002,
                     "min": 0.001, "max": 0.01}}},
        "osd0": {"counters": {"op.read": 5},
                 "gauges": {"pg.count": 16}},
    }
    text = prometheus_export(dumps)
    samples = parse_prometheus_text(text)
    by_key = {(s.metric, s.labels["daemon"], s.labels["name"]): s.value
              for s in samples}
    assert by_key[("repro_counter_total", "mon0", "paxos.commit")] == 42
    assert by_key[("repro_gauge", "osd0", "pg.count")] == 16
    assert by_key[("repro_rate", "mon0", "rpc.rx")] == 12.25
    assert by_key[("repro_latency_count", "mon0", "rpc.mon_req")] == 7
    assert by_key[("repro_latency_mean", "mon0",
                   "rpc.mon_req")] == 0.002
    # Non-numeric gauges are not exported.
    assert ("repro_gauge", "mon0", "state") not in by_key
    # Every sample line sits under a TYPE declaration.
    assert text.count("# TYPE repro_counter_total counter") == 1


def test_prometheus_export_escapes_labels():
    dumps = {'we"ird\\d\naemon': {"counters": {"c": 1}}}
    text = prometheus_export(dumps)
    (sample,) = parse_prometheus_text(text)
    assert sample.labels["daemon"] == 'we"ird\\d\naemon'


def test_prometheus_parser_is_strict():
    with pytest.raises(ValueError):
        parse_prometheus_text("orphan_metric{a=\"b\"} 1\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("# TYPE m counter\nm{a=\"b\"} oops\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("# TYPE m counter\nm{a=b} 1\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("# TYPE m wrongtype\n")
    assert parse_prometheus_text("") == []


# ----------------------------------------------------------------------
# Mantle audit trail
# ----------------------------------------------------------------------
def test_audit_trail_ring_and_since_seq():
    trail = MantleAuditTrail(capacity=3)
    for i in range(5):
        trail.record(float(i), rank=0, policy="v1", status="decided")
    assert len(trail) == 3
    seqs = [r["seq"] for r in trail.records()]
    assert seqs == [3, 4, 5]  # oldest dropped, seq keeps counting
    assert [r["seq"] for r in trail.records(since_seq=4)] == [5]
    trail.clear()
    assert trail.records() == []
    nxt = trail.record(9.0, rank=0, policy="v1", status="decided")
    assert nxt["seq"] == 6  # never reissues seen sequence numbers


def test_audit_trail_record_shape():
    trail = MantleAuditTrail()
    rec = trail.record(
        12.0, rank=1, policy="seq-v2", status="decided",
        load_table=[{"rank": 0, "load": 9.0}],
        decision={"when": True, "targets": [0.0, 4.5], "routing": None},
        moves={0: ["/seq/a"]},
        counter_deltas={"migrate.export": 1.0})
    assert rec["policy"] == "seq-v2"
    assert rec["moves"] == {0: ["/seq/a"]}
    assert rec["counter_deltas"] == {"migrate.export": 1.0}
    err = trail.record(13.0, rank=1, policy="seq-v2",
                       status="policy-error", error="boom")
    assert err["error"] == "boom" and "moves" not in err


def test_merge_trails_orders_by_time():
    merged = merge_trails({
        "mds1": [{"seq": 1, "time": 5.0, "rank": 1, "policy": "p",
                  "status": "decided"}],
        "mds0": [{"seq": 1, "time": 3.0, "rank": 0, "policy": "p",
                  "status": "decided"},
                 {"seq": 2, "time": 7.0, "rank": 0, "policy": "p",
                  "status": "decided"}],
    })
    assert [(r["mds"], r["time"]) for r in merged] == [
        ("mds0", 3.0), ("mds1", 5.0), ("mds0", 7.0)]
