"""Integration-style unit tests for the monitor quorum."""

import pytest

from repro.errors import NotFound, NotPermitted
from repro.monitor.store import MonitorStore
from repro.sim import FailureInjector
from repro.testing import (
    ScriptClient,
    build_monitor_quorum,
    run_script,
    settle_quorum,
)


def make_cluster(count=3, seed=0, proposal_interval=0.1):
    sim, net, mons = build_monitor_quorum(count=count, seed=seed,
                                          proposal_interval=proposal_interval)
    leader = settle_quorum(sim, mons)
    client = ScriptClient(sim, net, "client", [m.name for m in mons])
    return sim, net, mons, leader, client


def test_leader_is_lowest_rank():
    sim, net, mons, leader, client = make_cluster()
    assert leader.name == "mon0"
    assert all(m.leader == "mon0" for m in mons)


def test_kv_put_then_get_round_trip():
    sim, net, mons, leader, client = make_cluster()
    version = run_script(sim, client, client.mon_kv_put("greeting", "hello"))
    assert version == 1
    entry = run_script(sim, client, client.mon_kv_get("greeting"))
    assert entry == {"value": "hello", "version": 1}


def test_kv_versions_increment_per_write():
    sim, net, mons, leader, client = make_cluster()
    assert run_script(sim, client, client.mon_kv_put("k", "a")) == 1
    assert run_script(sim, client, client.mon_kv_put("k", "b")) == 2
    entry = run_script(sim, client, client.mon_kv_get("k"))
    assert entry == {"value": "b", "version": 2}


def test_kv_get_missing_key_raises():
    sim, net, mons, leader, client = make_cluster()
    with pytest.raises(NotFound):
        run_script(sim, client, client.mon_kv_get("nope"))


def test_kv_replicated_to_all_monitors():
    sim, net, mons, leader, client = make_cluster()
    run_script(sim, client, client.mon_kv_put("k", 42))
    sim.run(until=sim.now + 1.0)  # let commits reach followers
    for m in mons:
        assert m.store.kv["k"]["value"] == 42


def test_submit_via_follower_is_proxied_to_leader():
    sim, net, mons, leader, client = make_cluster()
    follower = next(m.name for m in mons if not m.is_leader)
    client.mon_names = [follower]
    client._mon_cursor = 0
    version = run_script(sim, client, client.mon_kv_put("via-follower", 1))
    assert version == 1


def test_map_update_bumps_epoch_once_per_txn():
    sim, net, mons, leader, client = make_cluster()
    before = leader.store.osdmap.epoch
    run_script(sim, client, client.mon_submit([{
        "op": "map_update", "kind": "osd",
        "actions": [
            {"action": "set_osd_state", "name": "osd0", "state": "up"},
            {"action": "set_osd_state", "name": "osd1", "state": "up"},
        ]}]))
    assert leader.store.osdmap.epoch == before + 1
    assert leader.store.osdmap.up_osds() == ["osd0", "osd1"]


def test_subscription_pushes_new_maps():
    sim, net, mons, leader, client = make_cluster()
    run_script(sim, client, client.mon_subscribe(["osd"]))
    run_script(sim, client, client.mon_submit([{
        "op": "map_update", "kind": "osd",
        "actions": [{"action": "set_osd_state", "name": "osdX",
                     "state": "up"}]}]))
    sim.run(until=sim.now + 1.0)
    assert "osd" in client.cached_maps
    assert client.cached_maps["osd"].is_up("osdX")


def test_cluster_log_append_and_tail():
    sim, net, mons, leader, client = make_cluster()
    run_script(sim, client, client.mon_log("WRN", "balancer swapped"))
    tail = run_script(sim, client,
                      client.mon_request("mon_log_tail", {"count": 10}))
    assert any(e["message"] == "balancer swapped" for e in tail)


def test_leader_failover_preserves_data_and_liveness():
    sim, net, mons, leader, client = make_cluster()
    run_script(sim, client, client.mon_kv_put("durable", "yes"))
    inj = FailureInjector(sim, net)
    inj.crash_at(sim.now + 0.1, leader)
    sim.run(until=sim.now + 5.0)
    new_leaders = [m for m in mons if m.alive and m.is_leader]
    assert len(new_leaders) == 1
    assert new_leaders[0].name != leader.name
    # Old data survives; new writes work.
    entry = run_script(sim, client, client.mon_kv_get("durable"))
    assert entry["value"] == "yes"
    assert run_script(sim, client, client.mon_kv_put("post-failover", 1)) == 1


def test_restarted_monitor_catches_up():
    sim, net, mons, leader, client = make_cluster()
    victim = next(m for m in mons if not m.is_leader)
    victim.crash()
    for i in range(3):
        run_script(sim, client, client.mon_kv_put(f"k{i}", i))
    victim.restart()
    sim.run(until=sim.now + 5.0)
    for i in range(3):
        assert victim.store.kv[f"k{i}"]["value"] == i


def test_no_quorum_blocks_writes_until_heal():
    sim, net, mons, leader, client = make_cluster()
    mons[1].crash()
    mons[2].crash()
    # With 1/3 monitors alive there is no quorum; the write must not
    # complete while partitioned.
    proc = client.do(client.mon_kv_put("stalled", 1))
    sim.run(until=sim.now + 3.0)
    assert not proc.done
    mons[1].restart()
    sim.run(until=sim.now + 10.0)
    assert proc.done


def test_kv_guard_sanitizes_and_rejects():
    sim, net, mons, leader, client = make_cluster()

    def guard(key, value):
        if value == "forbidden":
            raise NotPermitted("nope")
        return str(value).upper()

    for m in mons:
        m.store.register_kv_guard("policy/", guard)
    run_script(sim, client, client.mon_kv_put("policy/x", "ok"))
    entry = run_script(sim, client, client.mon_kv_get("policy/x"))
    assert entry["value"] == "OK"
    with pytest.raises(NotPermitted):
        run_script(sim, client, client.mon_kv_put("policy/y", "forbidden"))


def test_store_apply_is_deterministic_across_replicas():
    a = MonitorStore(["m0", "m1", "m2"])
    b = MonitorStore(["m0", "m1", "m2"])
    batch = [
        {"op": "kv_put", "key": "k", "value": [1, 2]},
        {"op": "map_update", "kind": "mds",
         "actions": [{"action": "set_rank", "rank": 0, "name": "mds.a"}]},
        {"op": "kv_del", "key": "gone"},
    ]
    a.apply_batch(batch)
    b.apply_batch(batch)
    assert a.snapshot() == b.snapshot()


def test_kv_list_by_prefix():
    store = MonitorStore(["m0"])
    store.apply_batch([
        {"op": "kv_put", "key": "mantle/v1", "value": "x"},
        {"op": "kv_put", "key": "mantle/v2", "value": "y"},
        {"op": "kv_put", "key": "zlog/seq", "value": "z"},
    ])
    assert sorted(store.kv_list("mantle/")) == ["mantle/v1", "mantle/v2"]
