"""Unit tests: monitor store edge cases and cluster conveniences."""

import pytest

from repro.errors import InvalidArgument
from repro.monitor.cluster_log import INFO
from repro.monitor.store import MonitorStore
from repro.testing import (
    ScriptClient,
    build_monitor_quorum,
    run_script,
    settle_quorum,
)


def test_cluster_log_is_bounded():
    store = MonitorStore(["m0"])
    store.MAX_LOG_ENTRIES = 10
    for i in range(25):
        store.apply_batch([{"op": "log", "entry": {
            "time": float(i), "severity": INFO, "who": "t",
            "message": f"m{i}"}}])
    assert len(store.cluster_log) <= 10
    # The newest entries survive truncation.
    assert store.cluster_log[-1].message == "m24"


def test_log_tail_bounds():
    store = MonitorStore(["m0"])
    for i in range(5):
        store.apply_batch([{"op": "log", "entry": {
            "time": float(i), "severity": INFO, "who": "t",
            "message": f"m{i}"}}])
    assert [e.message for e in store.log_tail(2)] == ["m3", "m4"]
    assert store.log_tail(0) == []
    assert len(store.log_tail(100)) == 5


def test_invalid_txn_yields_error_result_not_crash():
    store = MonitorStore(["m0"])
    results = store.apply_batch([
        {"op": "kv_put", "key": "good", "value": 1},
        {"op": "warp-drive"},
        {"op": "kv_put", "key": "also-good", "value": 2},
    ])
    assert results[0] == 1
    assert isinstance(results[1], InvalidArgument)
    assert results[2] == 1
    # Surrounding transactions in the batch still applied.
    assert store.kv["good"]["value"] == 1
    assert store.kv["also-good"]["value"] == 2


def test_duplicate_pool_creation_is_an_error_result():
    store = MonitorStore(["m0"])
    batch = [{"op": "map_update", "kind": "osd",
              "actions": [{"action": "create_pool", "name": "p"}]}]
    store.apply_batch(batch)
    results = store.apply_batch(batch)
    assert isinstance(results[0], InvalidArgument)


def test_snapshot_restore_round_trip():
    store = MonitorStore(["m0", "m1", "m2"])
    store.apply_batch([
        {"op": "kv_put", "key": "k", "value": {"deep": [1, 2]}},
        {"op": "map_update", "kind": "mds",
         "actions": [{"action": "set_balancer_version",
                      "version": "v3"}]},
        {"op": "log", "entry": {"time": 1.0, "severity": INFO,
                                "who": "x", "message": "hello"}},
    ])
    snap = store.snapshot()
    other = MonitorStore(["m0", "m1", "m2"])
    other.restore(snap)
    assert other.snapshot() == snap
    assert other.mdsmap.balancer_version == "v3"


def test_subscribe_rejects_unknown_kinds():
    sim, net, mons = build_monitor_quorum(count=3, seed=201)
    settle_quorum(sim, mons)
    client = ScriptClient(sim, net, "c", [m.name for m in mons])
    fut = client.call("mon0", "mon_subscribe", {"kinds": ["martian"]},
                      timeout=2.0)
    sim.run(until=sim.now + 1.0)
    with pytest.raises(InvalidArgument):
        fut.result()


def test_kv_del_then_put_restarts_versioning():
    store = MonitorStore(["m0"])
    store.apply_batch([{"op": "kv_put", "key": "k", "value": "a"}])
    store.apply_batch([{"op": "kv_put", "key": "k", "value": "b"}])
    store.apply_batch([{"op": "kv_del", "key": "k"}])
    results = store.apply_batch([{"op": "kv_put", "key": "k",
                                  "value": "c"}])
    assert results[0] == 1  # versions restart after delete


def test_kv_values_are_isolated_copies():
    store = MonitorStore(["m0"])
    value = {"mutable": [1]}
    store.apply_batch([{"op": "kv_put", "key": "k", "value": value}])
    value["mutable"].append(2)
    assert store.kv_get("k")["value"] == {"mutable": [1]}
    fetched = store.kv_get("k")
    fetched["value"]["mutable"].append(99)
    assert store.kv_get("k")["value"] == {"mutable": [1]}
