"""Unit tests for the network, daemon, and RPC layers."""

import pytest

from repro.errors import InvalidArgument, NotFound
from repro.msg import Daemon, RpcTimeout
from repro.sim import (
    FailureInjector,
    FixedLatency,
    Network,
    Simulator,
    Timeout,
)


class EchoServer(Daemon):
    def __init__(self, sim, network, name="server"):
        super().__init__(sim, network, name)
        self.casts = []
        self.register_handler("echo", lambda src, p: p)
        self.register_handler("fail", self._fail)
        self.register_handler("slow", self._slow)
        self.register_handler("note", lambda src, p: self.casts.append(p))

    def _fail(self, src, payload):
        raise NotFound("no such thing")

    def _slow(self, src, payload):
        yield Timeout(payload["delay"])
        return payload["value"]


def make_pair(latency=0.001):
    sim = Simulator(seed=1)
    net = Network(sim, latency=FixedLatency(latency))
    server = EchoServer(sim, net)
    client = Daemon(sim, net, "client")
    return sim, net, server, client


def test_rpc_round_trip():
    sim, net, server, client = make_pair()
    fut = client.call("server", "echo", {"x": 1})
    assert sim.run_until_complete(fut) == {"x": 1}
    # One-way latency 1ms each direction.
    assert sim.now == pytest.approx(0.002)


def test_rpc_error_reraises_with_type():
    sim, net, server, client = make_pair()
    fut = client.call("server", "fail")
    sim.run()
    with pytest.raises(NotFound):
        fut.result()


def test_rpc_unknown_method_errors():
    sim, net, server, client = make_pair()
    fut = client.call("server", "nope")
    sim.run()
    assert fut.failed


def test_generator_handler_replies_on_completion():
    sim, net, server, client = make_pair()
    fut = client.call("server", "slow", {"delay": 5.0, "value": "done"})
    assert sim.run_until_complete(fut) == "done"
    assert sim.now == pytest.approx(5.002)


def test_rpc_timeout_fires_when_server_dead():
    sim, net, server, client = make_pair()
    server.crash()
    fut = client.call("server", "echo", "hi", timeout=2.0)
    sim.run()
    with pytest.raises(RpcTimeout):
        fut.result()


def test_late_reply_after_timeout_is_dropped():
    sim, net, server, client = make_pair()
    fut = client.call("server", "slow", {"delay": 10.0, "value": "v"},
                      timeout=1.0)
    sim.run()
    with pytest.raises(RpcTimeout):
        fut.result()  # settled by timeout; late reply must not re-settle


def test_cast_is_one_way():
    sim, net, server, client = make_pair()
    client.cast("server", "note", "ping")
    sim.run()
    assert server.casts == ["ping"]


def test_payloads_do_not_alias_across_the_wire():
    sim, net, server, client = make_pair()
    payload = {"list": [1, 2]}
    fut = client.call("server", "echo", payload)
    payload["list"].append(3)  # mutate after send
    result = sim.run_until_complete(fut)
    assert result == {"list": [1, 2]}


def test_partition_blocks_traffic_and_heal_restores():
    sim, net, server, client = make_pair()
    net.partition("client", "server")
    fut = client.call("server", "echo", 1, timeout=1.0)
    sim.run()
    assert fut.failed
    net.heal("client", "server")
    fut2 = client.call("server", "echo", 2, timeout=1.0)
    assert sim.run_until_complete(fut2) == 2


def test_crash_cancels_tickers_and_restart_hook_runs():
    sim, net, server, client = make_pair()
    ticks = []
    server.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    server.crash()
    sim.run(until=6.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_failure_injector_crash_and_restart():
    sim, net, server, client = make_pair()
    inj = FailureInjector(sim, net)
    inj.flap(server, down_at=1.0, up_at=3.0)
    f1 = client.call("server", "echo", "a", timeout=0.5)
    sim.run(until=2.0)
    assert not f1.failed  # sent at t=0, served before crash
    f2 = client.call("server", "echo", "b", timeout=0.5)
    sim.run(until=2.9)
    assert f2.failed  # server down
    sim.run(until=3.1)  # past the restart
    f3 = client.call("server", "echo", "c", timeout=0.5)
    sim.run(until=4.0)
    assert f3.result() == "c"
    assert [(kind, who) for _, kind, who in inj.log] == [
        ("crash", "server"), ("restart", "server")]


def test_message_loss_rate_drops_messages():
    sim = Simulator(seed=2)
    net = Network(sim, latency=FixedLatency(0.001))
    inj = FailureInjector(sim, net)
    EchoServer(sim, net)
    client = Daemon(sim, net, "client")
    inj.set_loss("client", "server", 1.0)
    fut = client.call("server", "echo", 1, timeout=0.5)
    sim.run()
    assert fut.failed
    inj.clear_loss()
    fut = client.call("server", "echo", 1, timeout=0.5)
    assert sim.run_until_complete(fut) == 1


def test_duplicate_handler_registration_rejected():
    sim, net, server, client = make_pair()
    with pytest.raises(ValueError):
        server.register_handler("echo", lambda s, p: p)


def test_call_from_dead_daemon_fails_immediately():
    sim, net, server, client = make_pair()
    client.crash()
    fut = client.call("server", "echo", 1)
    assert fut.failed


def test_network_counters():
    sim, net, server, client = make_pair()
    fut = client.call("server", "echo", 1)
    sim.run_until_complete(fut)
    assert net.messages_sent == 2
    assert net.messages_delivered == 2
    assert net.messages_dropped == 0
