"""Unit tests: latency models, network counters, cluster log entries."""

import pytest

from repro.monitor.cluster_log import ClusterLogEntry, DEBUG, ERROR, INFO
from repro.sim import (
    FixedLatency,
    LogNormalLatency,
    Network,
    Simulator,
    UniformLatency,
)
from repro.sim.network import lan_latency


def rng():
    return Simulator(seed=1).rng("test")


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
def test_fixed_latency_is_constant():
    model = FixedLatency(0.002)
    r = rng()
    assert {model.sample("a", "b", r) for _ in range(10)} == {0.002}
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.001, 0.003)
    r = rng()
    samples = [model.sample("a", "b", r) for _ in range(200)]
    assert all(0.001 <= s <= 0.003 for s in samples)
    assert max(samples) > min(samples)
    with pytest.raises(ValueError):
        UniformLatency(0.003, 0.001)


def test_lognormal_latency_median_and_cap():
    model = LogNormalLatency(median=0.001, sigma=0.5, cap=0.002)
    r = rng()
    samples = sorted(model.sample("a", "b", r) for _ in range(999))
    assert all(s <= 0.002 for s in samples)
    median = samples[len(samples) // 2]
    assert 0.0005 < median < 0.002
    with pytest.raises(ValueError):
        LogNormalLatency(median=0.0)


def test_lan_latency_profile_is_sane():
    model = lan_latency()
    r = rng()
    samples = [model.sample("a", "b", r) for _ in range(500)]
    assert all(0 < s <= 5e-3 for s in samples)


def test_loopback_messages_are_near_instant():
    sim = Simulator(seed=3)
    net = Network(sim, latency=FixedLatency(0.5))
    seen = []

    class Sink:
        name = "self"

        def deliver(self, env):
            seen.append(sim.now)

    net.register(Sink())
    net.send("self", "self", "hello")
    sim.run()
    assert seen and seen[0] < 0.001  # loopback skips the latency model


def test_send_to_unknown_endpoint_counts_as_dropped():
    sim = Simulator(seed=4)
    net = Network(sim, latency=FixedLatency(0.001))
    net.send("a", "ghost", "x")
    sim.run()
    assert net.messages_dropped == 1
    assert net.messages_delivered == 0


def test_duplicate_endpoint_registration_rejected():
    sim = Simulator(seed=5)
    net = Network(sim, latency=FixedLatency(0.001))

    class Sink:
        name = "dup"

        def deliver(self, env):
            pass

    net.register(Sink())
    with pytest.raises(ValueError):
        net.register(Sink())


# ----------------------------------------------------------------------
# Cluster log entries
# ----------------------------------------------------------------------
def test_cluster_log_entry_round_trip_and_severity():
    entry = ClusterLogEntry(time=1.5, severity=ERROR, who="mds.0",
                            message="bad")
    again = ClusterLogEntry.from_dict(entry.to_dict())
    assert again == entry
    assert entry.at_least(INFO)
    assert not ClusterLogEntry(0, DEBUG, "x", "m").at_least(INFO)
    assert "mds.0" in entry.format()


def test_cluster_log_entry_rejects_bad_severity():
    with pytest.raises(ValueError):
        ClusterLogEntry(time=0, severity="LOUD", who="x", message="m")
