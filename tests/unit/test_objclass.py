"""Unit tests for object classes: context, loader, registry, bundled."""

import pytest

from repro.errors import (
    AlreadyExists,
    NotFound,
    NotPermitted,
    PolicyError,
    ReadOnly,
    StaleEpoch,
)
from repro.objclass import ClassRegistry, MethodContext, compile_class_source
from repro.objclass.bundled import BUNDLED_CLASSES, register_all
from repro.rados.objects import StoredObject


def make_registry():
    reg = ClassRegistry()
    register_all(reg)
    return reg


def ctx_for(obj=None, oid="obj", epoch=None, now=0.0):
    return MethodContext(obj, oid, epoch=epoch, now=now)


# ----------------------------------------------------------------------
# MethodContext
# ----------------------------------------------------------------------
def test_context_create_exclusive_fails_on_existing():
    ctx = ctx_for(StoredObject("obj"))
    with pytest.raises(AlreadyExists):
        ctx.create(exclusive=True)
    ctx.create(exclusive=False)  # fine


def test_context_write_implicitly_creates():
    ctx = ctx_for(None)
    ctx.write(0, b"hi")
    obj, removed = ctx.outcome()
    assert obj is not None and not removed
    assert obj.read() == b"hi"


def test_context_mutations_do_not_touch_input_object():
    original = StoredObject("obj")
    original.write(0, b"old")
    base_version = original.version
    ctx = ctx_for(original)
    ctx.write_full(b"new")
    assert original.read() == b"old"
    assert original.version == base_version


def test_context_remove_then_outcome():
    ctx = ctx_for(StoredObject("obj"))
    ctx.remove()
    obj, removed = ctx.outcome()
    assert removed
    assert not ctx.exists


def test_context_read_missing_object_raises():
    ctx = ctx_for(None)
    with pytest.raises(NotFound):
        ctx.read()


def test_context_omap_roundtrip_and_list_prefix():
    ctx = ctx_for(None)
    ctx.omap_set("a.1", 1)
    ctx.omap_set("a.2", 2)
    ctx.omap_set("b.1", 3)
    assert ctx.omap_get("a.1") == 1
    assert [k for k, _ in ctx.omap_list(prefix="a.")] == ["a.1", "a.2"]
    assert [k for k, _ in ctx.omap_list(start="a.1", prefix="a.")] == ["a.2"]


# ----------------------------------------------------------------------
# Loader / sandbox
# ----------------------------------------------------------------------
GOOD_SOURCE = """
def bump(ctx, args):
    n = ctx.xattr_get("n", 0) + args.get("by", 1)
    ctx.xattr_set("n", n)
    return {"n": n}

METHODS = {"bump": bump}
"""


def test_loader_compiles_and_methods_run():
    methods = compile_class_source("counter", GOOD_SOURCE)
    ctx = ctx_for(None)
    assert methods["bump"](ctx, {"by": 5}) == {"n": 5}
    assert methods["bump"](ctx, {}) == {"n": 6}


def test_loader_rejects_syntax_errors():
    with pytest.raises(PolicyError):
        compile_class_source("bad", "def broken(:\n")


def test_loader_requires_methods_dict():
    with pytest.raises(PolicyError):
        compile_class_source("bad", "x = 1\n")


def test_loader_sandbox_blocks_imports_and_open():
    with pytest.raises(PolicyError):
        compile_class_source("bad", "import os\nMETHODS={'x': len}\n")
    src = """
def f(ctx, args):
    return open("/etc/passwd").read()

METHODS = {"f": f}
"""
    methods = compile_class_source("escape", src)
    reg = ClassRegistry()
    reg.register_bundled("escape", methods)
    with pytest.raises(PolicyError):
        reg.call("escape", "f", ctx_for(None), {})


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_versioned_install_and_stale_rejection():
    reg = ClassRegistry()
    assert reg.install_dynamic("c", 2, GOOD_SOURCE)
    assert not reg.install_dynamic("c", 1, GOOD_SOURCE)  # stale
    assert not reg.install_dynamic("c", 2, GOOD_SOURCE)  # same
    assert reg.install_dynamic("c", 3, GOOD_SOURCE)
    assert reg.version_of("c") == 3


def test_registry_broken_upgrade_keeps_old_version():
    reg = ClassRegistry()
    reg.install_dynamic("c", 1, GOOD_SOURCE)
    with pytest.raises(PolicyError):
        reg.install_dynamic("c", 2, "def broken(:\n")
    assert reg.version_of("c") == 1
    ctx = ctx_for(None)
    assert reg.call("c", "bump", ctx, {})["n"] == 1


def test_registry_cannot_shadow_bundled():
    reg = make_registry()
    with pytest.raises(PolicyError):
        reg.install_dynamic("zlog", 1, GOOD_SOURCE)


def test_registry_runtime_fault_becomes_policy_error():
    src = """
def boom(ctx, args):
    return 1 / 0

METHODS = {"boom": boom}
"""
    reg = ClassRegistry()
    reg.install_dynamic("b", 1, src)
    with pytest.raises(PolicyError):
        reg.call("b", "boom", ctx_for(None), {})


def test_registry_unknown_class_and_method():
    reg = make_registry()
    with pytest.raises(NotFound):
        reg.call("ghost", "m", ctx_for(None), {})
    with pytest.raises(NotFound):
        reg.call("zlog", "ghost", ctx_for(None), {})


def test_registry_catalog_lists_bundled_categories():
    reg = make_registry()
    catalog = {name: cat for name, cat, _ in reg.catalog()}
    assert catalog["zlog"] == "logging"
    assert catalog["lock"] == "locking"
    assert set(catalog) == set(BUNDLED_CLASSES)


# ----------------------------------------------------------------------
# cls_zlog: the CORFU storage interface
# ----------------------------------------------------------------------
def zcall(reg, ctx, method, **args):
    return reg.call("zlog", method, ctx, args)


def test_zlog_write_once_and_read():
    reg = make_registry()
    ctx = ctx_for(None, epoch=1)
    zcall(reg, ctx, "write", epoch=1, pos=0, data="entry0")
    assert zcall(reg, ctx, "read", epoch=1, pos=0) == {
        "state": "written", "data": "entry0"}
    with pytest.raises(ReadOnly):
        zcall(reg, ctx, "write", epoch=1, pos=0, data="overwrite")


def test_zlog_read_unwritten_raises_enoent():
    reg = make_registry()
    ctx = ctx_for(None)
    with pytest.raises(NotFound):
        zcall(reg, ctx, "read", epoch=1, pos=5)


def test_zlog_seal_returns_max_pos_and_fences_old_epoch():
    reg = make_registry()
    ctx = ctx_for(None)
    zcall(reg, ctx, "write", epoch=1, pos=0, data="a")
    zcall(reg, ctx, "write", epoch=1, pos=7, data="b")
    assert zcall(reg, ctx, "seal", epoch=2) == {"max_pos": 7}
    with pytest.raises(StaleEpoch):
        zcall(reg, ctx, "write", epoch=1, pos=8, data="stale")
    zcall(reg, ctx, "write", epoch=2, pos=8, data="fresh")


def test_zlog_seal_is_monotonic():
    reg = make_registry()
    ctx = ctx_for(None)
    zcall(reg, ctx, "seal", epoch=3)
    with pytest.raises(StaleEpoch):
        zcall(reg, ctx, "seal", epoch=3)
    with pytest.raises(StaleEpoch):
        zcall(reg, ctx, "seal", epoch=2)


def test_zlog_fill_is_idempotent_and_never_clobbers():
    reg = make_registry()
    ctx = ctx_for(None)
    zcall(reg, ctx, "fill", epoch=1, pos=3)
    zcall(reg, ctx, "fill", epoch=1, pos=3)
    assert zcall(reg, ctx, "read", epoch=1, pos=3) == {"state": "filled"}
    zcall(reg, ctx, "write", epoch=1, pos=4, data="real")
    with pytest.raises(ReadOnly):
        zcall(reg, ctx, "fill", epoch=1, pos=4)


def test_zlog_trim_and_max_position():
    reg = make_registry()
    ctx = ctx_for(None)
    zcall(reg, ctx, "write", epoch=1, pos=0, data="a")
    zcall(reg, ctx, "trim", epoch=1, pos=0)
    assert zcall(reg, ctx, "read", epoch=1, pos=0) == {"state": "trimmed"}
    assert zcall(reg, ctx, "max_position", epoch=1) == {"max_pos": 0}


# ----------------------------------------------------------------------
# cls_lock
# ----------------------------------------------------------------------
def test_lock_exclusive_blocks_and_unlock_releases():
    reg = make_registry()
    ctx = ctx_for(None, now=10.0)
    reg.call("lock", "lock", ctx, {"owner": "a"})
    with pytest.raises(AlreadyExists):
        reg.call("lock", "lock", ctx, {"owner": "b"})
    reg.call("lock", "unlock", ctx, {"owner": "a"})
    reg.call("lock", "lock", ctx, {"owner": "b"})


def test_lock_shared_allows_multiple_holders():
    reg = make_registry()
    ctx = ctx_for(None)
    reg.call("lock", "lock", ctx, {"owner": "a", "mode": "shared"})
    reg.call("lock", "lock", ctx, {"owner": "b", "mode": "shared"})
    info = reg.call("lock", "info", ctx, {})
    assert info["holders"] == ["a", "b"]


def test_lock_lease_expiry_and_break():
    reg = make_registry()
    ctx = ctx_for(None, now=0.0)
    reg.call("lock", "lock", ctx, {"owner": "a", "duration": 5.0})
    # Before expiry: cannot break.
    with pytest.raises(NotPermitted):
        reg.call("lock", "break_lock", ctx, {"owner": "a"})
    obj, _ = ctx.outcome()
    late = MethodContext(obj, "obj", now=6.0)
    reg.call("lock", "break_lock", late, {"owner": "a"})
    reg.call("lock", "lock", late, {"owner": "b"})


# ----------------------------------------------------------------------
# cls_numops / cls_kvstore / cls_version / cls_refcount / cls_log
# ----------------------------------------------------------------------
def test_numops_add_sub_get():
    reg = make_registry()
    ctx = ctx_for(None)
    assert reg.call("numops", "add", ctx, {"key": "x", "value": 5})[
        "value"] == 5
    assert reg.call("numops", "sub", ctx, {"key": "x", "value": 2})[
        "value"] == 3
    assert reg.call("numops", "get", ctx, {"key": "x"})["value"] == 3


def test_kvstore_preconditions_abort_batch():
    reg = make_registry()
    ctx = ctx_for(None)
    reg.call("kvstore", "put", ctx, {"set": {"a": 1}})
    with pytest.raises(StaleEpoch):
        reg.call("kvstore", "put", ctx,
                 {"expect": {"a": 999}, "set": {"a": 2, "b": 3}})
    # Nothing from the failed batch landed.
    values = reg.call("kvstore", "get", ctx, {"keys": ["a", "b"]})["values"]
    assert values == {"a": 1}


def test_version_check_guards_composition():
    reg = make_registry()
    ctx = ctx_for(None)
    reg.call("version", "bump", ctx, {})
    reg.call("version", "check", ctx, {"expect": 1})
    with pytest.raises(StaleEpoch):
        reg.call("version", "check", ctx, {"expect": 0})


def test_refcount_removes_object_at_zero():
    reg = make_registry()
    ctx = ctx_for(None)
    reg.call("refcount", "take", ctx, {"tag": "t1"})
    reg.call("refcount", "take", ctx, {"tag": "t2"})
    out = reg.call("refcount", "put", ctx, {"tag": "t1"})
    assert out == {"count": 1, "removed": False}
    out = reg.call("refcount", "put", ctx, {"tag": "t2"})
    assert out == {"count": 0, "removed": True}
    assert not ctx.exists


def test_cls_log_append_list_trim():
    reg = make_registry()
    ctx = ctx_for(None, now=1.0)
    for i in range(5):
        reg.call("log", "add", ctx, {"payload": f"e{i}", "ts": float(i)})
    out = reg.call("log", "list", ctx, {"max": 3})
    assert [e["payload"] for e in out["entries"]] == ["e0", "e1", "e2"]
    assert out["truncated"]
    reg.call("log", "trim", ctx, {"to_cursor": out["cursor"]})
    out2 = reg.call("log", "list", ctx, {"max": 10})
    assert [e["payload"] for e in out2["entries"]] == ["e3", "e4"]
