"""Unit tests for the pure Paxos state machines."""

import pytest

from repro.monitor.paxos import (
    Acceptor,
    ChosenLog,
    LeaderBook,
    NO_PROPOSAL,
    Proposal,
)


def test_acceptor_promises_monotonically():
    a = Acceptor()
    r1 = a.handle_prepare((1, 0), start=0)
    assert r1.ok and a.promised == (1, 0)
    r2 = a.handle_prepare((1, 0), start=0)  # same pid: rejected
    assert not r2.ok
    r3 = a.handle_prepare((0, 5), start=0)  # lower round: rejected
    assert not r3.ok
    r4 = a.handle_prepare((2, 0), start=0)
    assert r4.ok and a.promised == (2, 0)


def test_acceptor_accept_respects_promise():
    a = Acceptor()
    a.handle_prepare((5, 0), start=0)
    assert not a.handle_accept(Proposal(0, (4, 0), "old"))
    assert a.handle_accept(Proposal(0, (5, 0), "new"))
    assert a.accepted[0] == ((5, 0), "new")


def test_acceptor_reports_accepted_values_in_prepare():
    a = Acceptor()
    a.handle_accept(Proposal(0, (1, 0), "v0"))
    a.handle_accept(Proposal(3, (1, 0), "v3"))
    rep = a.handle_prepare((2, 1), start=1)
    assert rep.ok
    assert rep.accepted == {3: ((1, 0), "v3")}  # instance 0 < start


def test_acceptor_accept_without_prepare_is_allowed():
    # Phase 2 from a leader whose prepare this acceptor missed still
    # succeeds if the pid is not below any promise (pid >= promised).
    a = Acceptor()
    assert a.handle_accept(Proposal(0, (1, 0), "v"))


def test_acceptor_forget_below_gc():
    a = Acceptor()
    for i in range(5):
        a.handle_accept(Proposal(i, (1, 0), f"v{i}"))
    a.forget_below(3)
    assert sorted(a.accepted) == [3, 4]


def test_chosen_log_applies_in_order():
    log = ChosenLog()
    log.learn(2, "c")
    assert log.take_ready() == []
    log.learn(0, "a")
    assert log.take_ready() == [(0, "a")]
    log.learn(1, "b")
    assert log.take_ready() == [(1, "b"), (2, "c")]
    assert log.applied_through == 2
    assert log.next_instance == 3


def test_chosen_log_detects_agreement_violation():
    log = ChosenLog()
    log.learn(0, "a")
    with pytest.raises(AssertionError):
        log.learn(0, "b")


def test_chosen_log_duplicate_learn_is_idempotent():
    log = ChosenLog()
    log.learn(0, "a")
    log.learn(0, "a")
    assert log.take_ready() == [(0, "a")]
    # Learning an already-applied instance is ignored.
    log.learn(0, "whatever-late-commit")
    assert log.take_ready() == []


def test_chosen_log_next_instance_skips_known():
    log = ChosenLog()
    log.learn(1, "b")
    assert log.next_instance == 0
    log.learn(0, "a")
    log.take_ready()
    assert log.next_instance == 2


def test_leader_book_quorum_transition_fires_once():
    book = LeaderBook(quorum=2)
    book.start(0, "v")
    assert not book.record_ack(0, "a")  # 1 of 2
    assert book.record_ack(0, "b")      # reaches quorum: True
    assert not book.record_ack(0, "c")  # already chosen: False
    book.finish(0)
    assert not book.record_ack(0, "d")  # finished: ignored


def test_no_proposal_sorts_below_everything():
    assert NO_PROPOSAL < (0, 0)
    assert NO_PROPOSAL < (1, 2)
