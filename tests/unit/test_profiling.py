"""Unit tests: profiler planes, Perfetto export, results stamping."""

import json
import os
import sys

from repro.profiling import (
    SimProfiler,
    chrome_trace,
    install_profiler,
    peak_rss_bytes,
    uninstall_profiler,
    write_chrome_trace,
)
from repro.sim import Simulator
from repro.sim.event import Timeout
from repro.telemetry import TraceCollector

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                         os.pardir, "benchmarks")


# ----------------------------------------------------------------------
# Installation and opt-in
# ----------------------------------------------------------------------
def test_profiler_off_by_default():
    sim = Simulator(seed=1)
    assert sim.profiler is None
    assert sim.wall_profiler is None


def test_env_opt_in_mirrors_sanitize(monkeypatch):
    monkeypatch.setenv("MALACOLOGY_PROFILE", "1")
    sim = Simulator(seed=1)
    assert isinstance(sim.profiler, SimProfiler)
    assert sim.wall_profiler is not None


def test_install_is_idempotent_and_uninstall_detaches():
    sim = Simulator(seed=1)
    first = install_profiler(sim)
    assert install_profiler(sim) is first
    uninstall_profiler(sim)
    assert sim.profiler is None
    assert sim.wall_profiler is None


def test_install_without_wall_plane():
    sim = Simulator(seed=1)
    install_profiler(sim, wall=False)
    assert sim.profiler is not None
    assert sim.wall_profiler is None


# ----------------------------------------------------------------------
# Simulation plane
# ----------------------------------------------------------------------
def test_event_counts_and_high_water_marks():
    sim = Simulator(seed=1)
    prof = install_profiler(sim, wall=False)
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert prof.events_dispatched == 10
    # All ten fire at t=1.0: the ready batch is the full ten; the
    # queue depth seen at the first dispatch is the other nine.
    assert prof.ready_hwm == 10
    assert prof.queue_hwm == 9
    assert prof.event_rate_sim() == 10.0


def test_cancelled_events_counted_separately():
    sim = Simulator(seed=1)
    prof = install_profiler(sim, wall=False)
    call = sim.schedule(1.0, lambda: None)
    call.cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert prof.events_dispatched == 1
    assert prof.events_cancelled == 1


def test_run_until_complete_also_profiles():
    sim = Simulator(seed=1)
    prof = install_profiler(sim, wall=False)

    def body():
        yield Timeout(1.0)
        yield Timeout(1.0)
        return "done"

    proc = sim.spawn(body(), name="p")
    assert sim.run_until_complete(proc) == "done"
    assert prof.events_dispatched >= 3


def test_queue_samples_tape_is_deterministic():
    def tape(seed):
        sim = Simulator(seed=seed)
        prof = install_profiler(sim, wall=False)
        prof.SAMPLE_EVERY = SimProfiler.SAMPLE_EVERY

        def ping():
            for _ in range(600):
                yield Timeout(0.01)

        sim.spawn(ping(), name="ping")
        sim.run()
        return list(prof.queue_samples)

    first, second = tape(7), tape(7)
    assert first == second
    assert first  # 600 steps -> >= 1200 events -> sampled


def test_handler_stats_and_top_handlers():
    sim = Simulator(seed=1)
    prof = install_profiler(sim, wall=False)
    prof.on_handler("osd0", "osd_op")
    prof.on_handler("osd0", "osd_op")
    prof.on_handler_done("osd0", "osd_op", 0.5)
    prof.on_handler("mds0", "mds_req")
    prof.on_handler_done("mds0", "mds_req", 2.0, error=True)
    stats = prof.handler_stats()
    assert stats["osd0:osd_op"]["count"] == 2
    assert stats["osd0:osd_op"]["sim_time"] == 0.5
    assert stats["mds0:mds_req"]["errors"] == 1
    assert prof.handler_stats("osd0") == {
        "osd0:osd_op": stats["osd0:osd_op"]}
    top = prof.top_handlers(1, by="sim_time")
    assert top[0]["daemon"] == "mds0"
    top_count = prof.top_handlers(1, by="count")
    assert top_count[0]["daemon"] == "osd0"
    totals = prof.daemon_totals("osd0")
    assert totals == {"events": 2.0, "sim_time": 0.5}


def test_reset_clears_every_plane():
    sim = Simulator(seed=1)
    prof = install_profiler(sim, wall=False)
    sim.schedule(1.0, lambda: None)
    sim.run()
    prof.on_handler("d", "m")
    prof.reset()
    assert prof.events_dispatched == 0
    assert prof.handler_stats() == {}
    assert prof.queue_samples == []


# ----------------------------------------------------------------------
# Host wall-clock plane
# ----------------------------------------------------------------------
def test_wall_plane_attributes_process_steps():
    sim = Simulator(seed=1)
    install_profiler(sim)

    def body():
        yield Timeout(1.0)
        yield Timeout(1.0)

    sim.spawn(body(), name="osd0:osd_op")
    sim.run()
    wall = sim.wall_profiler
    stats = wall.stats()
    key = "dispatch:process:osd0:osd_op"
    assert key in stats
    assert stats[key]["count"] >= 2
    assert stats[key]["wall_ns"] > 0
    assert wall.total_ns() > 0


def test_wall_hotspots_ranked_and_shared():
    sim = Simulator(seed=1)
    install_profiler(sim)
    for i in range(3):
        sim.schedule(float(i), lambda: None)
    sim.run()
    wall = sim.wall_profiler
    hot = wall.hotspots(5)
    assert hot
    assert [h["wall_ns"] for h in hot] == sorted(
        (h["wall_ns"] for h in hot), reverse=True)
    dispatch_shares = [h["share"] for h in hot if h["plane"] == "dispatch"]
    assert all(0.0 <= s <= 1.0 for s in dispatch_shares)


def test_collapsed_stack_dump_is_flamegraph_shaped():
    sim = Simulator(seed=1)
    install_profiler(sim)

    def body():
        yield Timeout(1.0)

    sim.spawn(body(), name="mds0:mds req")  # space must be sanitized
    sim.run()
    dump = sim.wall_profiler.collapsed_stacks()
    assert dump
    for line in dump.splitlines():
        frames, value = line.rsplit(" ", 1)
        assert frames.startswith("kernel;")
        assert len(frames.split(";")) >= 3
        assert " " not in frames
        assert int(value) >= 0


def test_wall_dump_shape_and_reset():
    sim = Simulator(seed=1)
    install_profiler(sim)
    sim.schedule(1.0, lambda: None)
    sim.run()
    wall = sim.wall_profiler
    doc = wall.dump()
    assert doc["elapsed_ns"] > 0
    assert 0.0 <= doc["attributed_share"] <= 1.0
    assert doc["hotspots"]
    wall.reset()
    assert wall.stats() == {}


def test_peak_rss_is_positive():
    assert peak_rss_bytes() > 0


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
def _traced_sim():
    sim = Simulator(seed=1)
    install_profiler(sim, wall=False)
    collector = TraceCollector.of(sim)
    ctx = collector.begin_trace("zlog.append", daemon="client")
    child = collector.start_span("osd_op", daemon="osd0",
                                 trace_id=ctx.trace_id,
                                 parent_id=ctx.span_id, src="client",
                                 kind="request")
    sim.schedule(1.0, lambda: None)
    sim.run()
    collector.finish(child.span_id)
    collector.finish(ctx.span_id)
    # One deliberately unfinished span: must be skipped, not exported.
    collector.start_span("orphan", daemon="osd1",
                         trace_id=ctx.trace_id, parent_id=ctx.span_id)
    return sim


def test_chrome_trace_document_shape():
    sim = _traced_sim()
    doc = chrome_trace(sim)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["open_spans_skipped"] == 1
    assert doc["otherData"]["kernel"]["events_dispatched"] == 1
    phases = {e["ph"] for e in events}
    assert "M" in phases and "X" in phases
    spans = [e for e in events if e["ph"] == "X"]
    assert {s["name"] for s in spans} == {"zlog.append", "osd_op"}
    for span in spans:
        assert span["dur"] >= 0
        assert span["ts"] >= 0
        assert isinstance(span["pid"], int)
    # Process-name metadata names every daemon plus the kernel.
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"kernel", "client", "osd0"} <= names
    child = next(s for s in spans if s["name"] == "osd_op")
    assert child["args"]["parent_id"] is not None
    assert child["args"]["src"] == "client"


def test_write_chrome_trace_round_trips(tmp_path):
    sim = _traced_sim()
    path = write_chrome_trace(sim, str(tmp_path / "trace.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    assert all("ph" in e for e in doc["traceEvents"])


def test_chrome_trace_without_collector_or_profiler():
    sim = Simulator(seed=1)
    doc = chrome_trace(sim)
    assert [e["ph"] for e in doc["traceEvents"]] == ["M"]
    assert "kernel" not in doc["otherData"]


# ----------------------------------------------------------------------
# Results stamping (bench_util)
# ----------------------------------------------------------------------
def test_emit_json_stamps_schema_and_git_sha(tmp_path):
    sys.path.insert(0, BENCH_DIR)
    try:
        import bench_util
    finally:
        sys.path.pop(0)
    path = bench_util.emit_json("stamp_probe", {"value": 1},
                                path=str(tmp_path / "probe.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["schema_version"] == bench_util.RESULTS_SCHEMA_VERSION
    assert doc["benchmark"] == "stamp_probe"
    assert doc["value"] == 1
    sha = doc["git_sha"]
    assert sha == "unknown" or (len(sha) == 40
                                and all(c in "0123456789abcdef"
                                        for c in sha))
