"""Unit tests: the transactional op-list engine (repro.rados.ops)."""

import pytest

from repro.errors import AlreadyExists, InvalidArgument, NotFound
from repro.objclass.bundled import register_all
from repro.objclass.registry import ClassRegistry
from repro.rados.objects import StoredObject
from repro.rados.ops import apply_ops, is_read_only


@pytest.fixture(scope="module")
def registry():
    reg = ClassRegistry()
    register_all(reg)
    return reg


def test_is_read_only_classification():
    assert is_read_only([{"op": "read"}, {"op": "stat"}])
    assert is_read_only([{"op": "omap_list"}, {"op": "xattr_get",
                                               "key": "k"}])
    assert not is_read_only([{"op": "read"}, {"op": "write",
                                              "offset": 0, "data": b""}])
    # exec is conservatively mutating.
    assert not is_read_only([{"op": "exec", "cls": "x", "method": "y"}])
    assert is_read_only([])


def test_apply_ops_returns_per_op_results(registry):
    results, obj, removed = apply_ops(
        None, "o",
        [
            {"op": "create"},
            {"op": "append", "data": b"abc"},
            {"op": "append", "data": b"de"},
            {"op": "stat"},
            {"op": "read", "offset": 1, "length": 3},
        ],
        registry)
    assert results[0] is None
    assert results[1] == 0 and results[2] == 3
    assert results[3]["size"] == 5
    assert results[4] == b"bcd"
    assert obj is not None and not removed


def test_apply_ops_failure_leaves_input_untouched(registry):
    obj = StoredObject("o")
    obj.write(0, b"original")
    with pytest.raises(NotFound):
        apply_ops(obj, "o",
                  [{"op": "write_full", "data": b"clobbered"},
                   {"op": "omap_get", "key": "missing"}],
                  registry)
    assert obj.read() == b"original"


def test_apply_ops_exec_composes_with_native_ops(registry):
    results, obj, _ = apply_ops(
        None, "o",
        [
            {"op": "write_full", "data": b"matrix-bytes"},
            {"op": "exec", "cls": "numops", "method": "add",
             "args": {"key": "row-count", "value": 3}},
            {"op": "omap_get", "key": "row-count"},
        ],
        registry)
    assert results[1] == {"value": 3}
    assert results[2] == 3
    assert obj.read() == b"matrix-bytes"


def test_apply_ops_exec_failure_aborts_native_ops_too(registry):
    from repro.errors import StaleEpoch

    obj = StoredObject("o")
    obj.omap_set("k", 1)
    with pytest.raises(StaleEpoch):
        apply_ops(obj, "o",
                  [{"op": "omap_set", "key": "k", "value": 2},
                   {"op": "exec", "cls": "version", "method": "check",
                    "args": {"expect": 42}}],
                  registry)
    assert obj.omap_get("k") == 1


def test_apply_ops_remove_and_recreate(registry):
    obj = StoredObject("o")
    obj.write(0, b"x")
    results, new_obj, removed = apply_ops(
        obj, "o", [{"op": "remove"}], registry)
    assert removed and new_obj is None
    # Remove-then-create in one transaction resurrects fresh state.
    results, new_obj, removed = apply_ops(
        obj, "o", [{"op": "remove"}, {"op": "create"}, {"op": "stat"}],
        registry)
    assert not removed
    assert results[2]["size"] == 0


def test_apply_ops_assert_exists(registry):
    with pytest.raises(NotFound):
        apply_ops(None, "o", [{"op": "assert_exists"}], registry)
    obj = StoredObject("o")
    apply_ops(obj, "o", [{"op": "assert_exists"}], registry)


def test_apply_ops_create_exclusive(registry):
    obj = StoredObject("o")
    with pytest.raises(AlreadyExists):
        apply_ops(obj, "o", [{"op": "create"}], registry)
    apply_ops(obj, "o", [{"op": "create", "exclusive": False}], registry)


def test_apply_ops_unknown_op_rejected(registry):
    with pytest.raises(InvalidArgument):
        apply_ops(None, "o", [{"op": "levitate"}], registry)


def test_apply_ops_epoch_reaches_class_context(registry):
    results, obj, _ = apply_ops(
        None, "o",
        [{"op": "exec", "cls": "zlog", "method": "write",
          "args": {"epoch": 5, "pos": 0, "data": "d"}}],
        registry, epoch=5)
    # Seal at 6, then epoch-5 context write must bounce.
    from repro.errors import StaleEpoch

    _, obj, _ = apply_ops(obj, "o",
                          [{"op": "exec", "cls": "zlog",
                            "method": "seal", "args": {"epoch": 6}}],
                          registry)
    with pytest.raises(StaleEpoch):
        apply_ops(obj, "o",
                  [{"op": "exec", "cls": "zlog", "method": "write",
                    "args": {"epoch": 5, "pos": 1, "data": "d"}}],
                  registry, epoch=5)
