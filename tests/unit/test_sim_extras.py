"""Unit tests: remaining simulator and cluster conveniences."""

import pytest

from repro.core import MalacologyCluster
from repro.errors import TimeoutError_
from repro.sim import Future, Simulator, Timeout


def test_timeout_future_fails_pending_only():
    sim = Simulator()
    fut = Future()
    sim.timeout_future(fut, 2.0, TimeoutError_("deadline"))
    sim.schedule(1.0, fut.resolve, "made-it")
    sim.run()
    assert fut.result() == "made-it"

    fut2 = Future()
    sim.timeout_future(fut2, 1.0, TimeoutError_("deadline"))
    sim.run()
    with pytest.raises(TimeoutError_):
        fut2.result()


def test_run_until_complete_respects_time_limit():
    sim = Simulator()

    def forever():
        while True:
            yield Timeout(1.0)

    proc = sim.spawn(forever())
    with pytest.raises(RuntimeError, match="time limit"):
        sim.run_until_complete(proc, limit=10.0)


def test_stop_halts_run_midway():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    sim.run()  # resumes
    assert seen == ["a", "b"]


def test_process_repr_and_double_cancel():
    sim = Simulator()

    def body():
        yield Timeout(1.0)

    proc = sim.spawn(body(), name="worker")
    assert "worker" in repr(proc)
    sim.run()
    proc.cancel()
    proc.cancel()  # idempotent on finished process
    assert proc.done


class TestClusterConveniences:
    @pytest.fixture(scope="class")
    def cluster(self):
        return MalacologyCluster.build(osds=3, mdss=2, seed=131)

    def test_mds_of_rank_lookup(self, cluster):
        assert cluster.mds_of_rank(1).rank == 1
        with pytest.raises(KeyError):
            cluster.mds_of_rank(99)

    def test_leader_monitor_found(self, cluster):
        leader = cluster.leader_monitor()
        assert leader.is_leader

    def test_new_client_names_are_unique(self, cluster):
        a = cluster.new_client()
        b = cluster.new_client()
        assert a.name != b.name

    def test_run_advances_simulated_time(self, cluster):
        before = cluster.sim.now
        cluster.run(5.0)
        assert cluster.sim.now == pytest.approx(before + 5.0)
