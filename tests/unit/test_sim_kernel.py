"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Future, Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
    sim.schedule(3.0, lambda: seen.append(("c", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for tag in "abc":
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == []
    sim.run(until=15.0)
    assert fired == ["late"]


def test_cancelled_callback_never_fires():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_process_timeout_advances_time():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield Timeout(1.5)
        times.append(sim.now)
        yield Timeout(0.5)
        times.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert times == [0.0, 1.5, 2.0]


def test_process_return_value_resolves_completion():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        return 99

    proc = sim.spawn(body())
    result = sim.run_until_complete(proc)
    assert result == 99


def test_process_waits_on_future():
    sim = Simulator()
    fut = Future()
    got = []

    def waiter():
        value = yield fut
        got.append((value, sim.now))

    sim.spawn(waiter())
    sim.schedule(3.0, fut.resolve, "hello")
    sim.run()
    assert got == [("hello", 3.0)]


def test_future_failure_raises_inside_process():
    sim = Simulator()
    fut = Future()
    caught = []

    def waiter():
        try:
            yield fut
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.schedule(1.0, fut.fail, RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_waits_on_process():
    sim = Simulator()

    def inner():
        yield Timeout(2.0)
        return "inner-done"

    def outer():
        value = yield sim.spawn(inner())
        return (value, sim.now)

    proc = sim.spawn(outer())
    assert sim.run_until_complete(proc) == ("inner-done", 2.0)


def test_unhandled_process_error_surfaces_from_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("oops")

    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="oops"):
        sim.run()


def test_handled_process_error_does_not_raise_from_run():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("oops")

    caught = []

    def guard():
        try:
            yield sim.spawn(bad())
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(guard())
    sim.run()
    assert caught == ["oops"]


def test_cancel_stops_process():
    sim = Simulator()
    steps = []

    def body():
        while True:
            yield Timeout(1.0)
            steps.append(sim.now)

    proc = sim.spawn(body())
    sim.schedule(3.5, proc.cancel)
    sim.run(until=10.0)
    assert steps == [1.0, 2.0, 3.0]
    assert proc.done


def test_rng_streams_are_deterministic_and_independent():
    a1 = Simulator(seed=5).rng("alpha").random()
    sim = Simulator(seed=5)
    # Drawing from another stream must not perturb "alpha".
    sim.rng("beta").random()
    assert sim.rng("alpha").random() == a1
    # A different seed gives a different draw.
    assert Simulator(seed=6).rng("alpha").random() != a1


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    fut = Future()
    with pytest.raises(RuntimeError, match="deadlock"):
        sim.run_until_complete(fut)


def test_yield_none_resumes_same_time():
    sim = Simulator()
    times = []

    def body():
        times.append(sim.now)
        yield None
        times.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert times == [0.0, 0.0]


def test_future_double_settle_rejected():
    fut = Future()
    fut.resolve(1)
    with pytest.raises(RuntimeError):
        fut.resolve(2)
    assert fut.resolve_if_pending(3) is False
    assert fut.result() == 1


def test_gather_collects_all_results():
    from repro.sim.event import gather

    sim = Simulator()
    futs = [Future() for _ in range(3)]
    out = gather(futs)
    sim.schedule(1.0, futs[2].resolve, "c")
    sim.schedule(2.0, futs[0].resolve, "a")
    sim.schedule(3.0, futs[1].resolve, "b")
    result = sim.run_until_complete(out)
    assert result == ["a", "b", "c"]


def test_gather_fails_fast_on_first_error():
    from repro.sim.event import gather

    futs = [Future(), Future()]
    out = gather(futs)
    futs[1].fail(RuntimeError("bad"))
    assert out.failed


def test_gather_of_nothing_resolves_immediately():
    from repro.sim.event import gather

    out = gather([])
    assert out.done and out.result() == []
