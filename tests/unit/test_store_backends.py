"""Unit tests for the repro.store backends and the batch EC path."""

import pytest

from repro.errors import InvalidArgument
from repro.rados.erasure import ErasureCodec
from repro.rados.objects import StoredObject
from repro.store import (
    BACKEND_PROFILES,
    CacheEntry,
    CacheTier,
    ColdObject,
    ColdStore,
    LogRecord,
    LogStructuredStore,
    MemStore,
    make_store,
    normalize_backend,
    normalize_cache,
)
from repro.telemetry.counters import PerfCounters


def obj(oid, data=b"", version=1, omap=None, xattrs=None):
    o = StoredObject(oid)
    o.data = bytearray(data)
    o.omap = dict(omap or {})
    o.xattrs = dict(xattrs or {})
    o.version = version
    return o


# ----------------------------------------------------------------------
# Satellite: __slots__ memory discipline
# ----------------------------------------------------------------------
def test_record_types_have_no_instance_dict():
    instances = [
        StoredObject("o"),
        LogRecord("o", 1, StoredObject("o")),
        ColdObject("o", [b""], 0, {}, {}, 1),
        CacheEntry(StoredObject("o"), True, 0),
        MemStore(),
        LogStructuredStore(),
        ColdStore(),
        CacheTier(MemStore()),
    ]
    for inst in instances:
        assert not hasattr(inst, "__dict__"), type(inst).__name__
        with pytest.raises(AttributeError):
            inst.arbitrary_attribute = 1


# ----------------------------------------------------------------------
# MemStore: the pre-refactor semantics
# ----------------------------------------------------------------------
def test_memstore_is_free_and_keeps_live_references():
    s = MemStore()
    o = obj("a", b"data")
    assert s.commit(o) == 0.0
    got, delay = s.fetch("a")
    assert got is o and delay == 0.0  # live reference, like the old dict
    assert s["a"] is o
    missing, delay = s.fetch("nope")
    assert missing is None and delay == 0.0
    assert s.discard("a") == 0.0
    assert "a" not in s
    assert s.discard("a") == 0.0  # idempotent, like dict.pop(oid, None)


def test_memstore_iterates_in_insertion_order():
    s = MemStore()
    for oid in ["z", "a", "m"]:
        s[oid] = obj(oid)
    assert list(s) == ["z", "a", "m"]
    assert len(s) == 3
    del s["a"]
    assert list(s) == ["z", "m"]


# ----------------------------------------------------------------------
# LogStructuredStore
# ----------------------------------------------------------------------
def test_logstructured_append_and_read():
    s = LogStructuredStore()
    assert s.commit(obj("a", b"1", version=1)) == s.WRITE_DELAY
    got, delay = s.fetch("a")
    assert got.read() == b"1" and delay == s.READ_DELAY
    # Overwrite leaves the old record as garbage.
    s.commit(obj("a", b"2", version=2))
    assert s["a"].read() == b"2"
    assert s.garbage_ratio() == 0.5
    assert list(s) == ["a"]  # sorted, live index only


def test_logstructured_segments_seal_at_capacity():
    s = LogStructuredStore()
    for i in range(s.SEGMENT_RECORDS + 1):
        s.commit(obj(f"o{i:03d}"))
    assert s.status()["segments"] == 2


def test_logstructured_compaction_thresholds():
    s = LogStructuredStore()
    # Below the size floor: never compacts no matter the ratio.
    s.commit(obj("a", version=1))
    s.commit(obj("a", version=2))
    s.maintenance(now=1.0)
    assert s.compactions == 0
    assert s.eligible_garbage_ratio() == 0.0  # too small to matter
    # Push past the floor with >= 50% garbage: one tick compacts.
    for i in range(s.COMPACT_MIN_RECORDS):
        s.commit(obj("hot", version=10 + i))
    ratio_before = s.garbage_ratio()
    assert ratio_before >= s.COMPACT_RATIO
    s.maintenance(now=2.0)
    assert s.compactions == 1 and s.last_compaction == 2.0
    assert s.garbage_ratio() == 0.0
    assert s["hot"].version == 10 + s.COMPACT_MIN_RECORDS - 1
    assert s["a"].version == 2
    # flush() compacts any remaining garbage regardless of thresholds.
    del s["a"]
    s.flush(now=3.0)
    assert s.compactions == 2 and s.garbage_ratio() == 0.0
    assert "a" not in s


def test_logstructured_counters_flow_to_perf():
    perf = PerfCounters("osd-test")
    s = LogStructuredStore(perf=perf)
    s.commit(obj("a", version=1))
    s.fetch("a")
    dump = perf.dump()
    assert dump["counters"]["store.logstructured.append"] == 1
    assert dump["counters"]["store.logstructured.read"] == 1


# ----------------------------------------------------------------------
# Satellite: batched erasure coding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k,m", [(2, 1), (3, 2), (4, 2)])
def test_encode_batch_matches_per_object_encode(k, m):
    codec = ErasureCodec(k, m)
    buffers = [b"", b"x", b"hello world" * 7, bytes(range(256)),
               b"\x00" * 31]
    batch = codec.encode_batch(buffers)
    assert len(batch) == len(buffers)
    for buf, shards in zip(buffers, batch):
        assert shards == codec.encode(buf)


def test_encode_batch_shards_decode_independently():
    codec = ErasureCodec(3, 2)
    buffers = [bytes([i]) * (17 + i) for i in range(6)]
    for buf, shards in zip(buffers, codec.encode_batch(buffers)):
        # Drop any m=2 shards; the rest must reconstruct the object.
        have = {i: s for i, s in enumerate(shards) if i not in (1, 3)}
        assert codec.decode(have, len(buf)) == buf


# ----------------------------------------------------------------------
# ColdStore
# ----------------------------------------------------------------------
def test_coldstore_stages_then_batch_encodes_on_flush():
    perf = PerfCounters("osd-test")
    s = ColdStore(k=2, m=1, perf=perf)
    payloads = {f"o{i}": bytes([i]) * (10 + i) for i in range(5)}
    for oid, data in payloads.items():
        assert s.commit(obj(oid, data, omap={"n": oid})) == s.STAGE_DELAY
    assert s.staged_count() == 5 and s.encode_batches == 0
    s.maintenance(now=1.0)
    assert s.staged_count() == 0 and s.encode_batches == 1
    dump = perf.dump()
    assert dump["counters"]["store.coldstore.encode_batch"] == 1
    assert dump["counters"]["store.coldstore.encoded_objects"] == 5
    for oid, data in payloads.items():
        got, delay = s.fetch(oid)
        assert delay == s.COLD_READ_DELAY
        assert got.read() == data and got.omap == {"n": oid}


def test_coldstore_preserves_metadata_and_version_through_freeze():
    s = ColdStore()
    s.commit(obj("a", b"payload", version=7, omap={"k": 1},
                 xattrs={"x": "y"}))
    s.flush(now=0.5)
    got = s["a"]
    assert got.version == 7 and got.xattrs == {"x": "y"}
    assert got.omap == {"k": 1} and got.read() == b"payload"


def test_coldstore_mapping_plane_and_discard():
    s = ColdStore()
    s["a"] = obj("a", b"1")
    s.flush(now=0.0)
    s["b"] = obj("b", b"2")
    assert sorted(s) == ["a", "b"] and len(s) == 2
    # A re-write shadows the cold copy until the next flush.
    s.commit(obj("a", b"new", version=2))
    assert s["a"].read() == b"new"
    _, delay = s.fetch("a")
    assert delay == s.STAGE_DELAY  # hot again while staged
    assert s.discard("a") == s.STAGE_DELAY
    assert "a" not in s
    del s["b"]
    with pytest.raises(KeyError):
        del s["b"]
    missing, _ = s.fetch("zzz")
    assert missing is None


# ----------------------------------------------------------------------
# CacheTier
# ----------------------------------------------------------------------
def test_cache_write_back_is_deferred_until_maintenance():
    base = MemStore()
    tier = CacheTier(base, capacity=4, promote_reads=2)
    tier.commit(obj("a", b"dirty"))
    assert "a" not in base  # write-back: base untouched before the tick
    assert tier["a"].read() == b"dirty"  # but visible through the tier
    assert tier.dirty_count() == 1
    tier.maintenance(now=1.0)
    assert base["a"].read() == b"dirty"
    assert tier.dirty_count() == 0
    assert "a" in tier._entries  # still resident, now clean


def test_cache_hit_miss_and_promotion_threshold():
    perf = PerfCounters("osd-test")
    base = MemStore()
    tier = CacheTier(base, capacity=4, promote_reads=2, perf=perf)
    base.commit(obj("cold", b"v"))
    got, d1 = tier.fetch("cold")  # miss 1: counted, not promoted
    assert got.read() == b"v" and d1 == tier.MISS_DELAY
    assert "cold" not in tier._entries
    tier.fetch("cold")            # miss 2: crosses promote_reads
    assert "cold" in tier._entries
    _, d3 = tier.fetch("cold")    # now a hit
    assert d3 == tier.HIT_DELAY
    counters = perf.dump()["counters"]
    assert counters["store.cache.hit"] == 1
    assert counters["store.cache.miss"] == 2
    assert counters["store.cache.promote"] == 1


def test_cache_never_evicts_dirty_entries():
    tier = CacheTier(MemStore(), capacity=2, promote_reads=1)
    for i in range(5):
        tier.commit(obj(f"o{i}", b"d"))
    # All five are dirty: nothing may be evicted, capacity or not.
    assert len(tier._entries) == 5
    assert tier.utilization() > 1.0  # the CACHE_TIER_FULL condition
    tier.maintenance(now=1.0)
    # Write-back first, then clean eviction down to capacity.
    assert tier.dirty_count() == 0
    assert len(tier._entries) == 2
    for i in range(5):  # nothing lost: evictees live in the base
        assert tier[f"o{i}"].read() == b"d"


def test_cache_eviction_is_lru_by_logical_clock():
    tier = CacheTier(MemStore(), capacity=2, promote_reads=1)
    for oid in ["a", "b", "c"]:
        tier.commit(obj(oid))
    tier.maintenance(now=1.0)  # all clean; evicts "a" (oldest)
    assert sorted(tier._entries) == ["b", "c"]
    tier.fetch("b")  # refresh b
    tier.commit(obj("d"))
    tier.maintenance(now=2.0)  # c is now the LRU clean entry
    assert sorted(tier._entries) == ["b", "d"]


def test_cache_zero_cost_plane_writes_through_and_invalidates():
    base = MemStore()
    tier = CacheTier(base, capacity=4, promote_reads=1)
    tier.commit(obj("a", b"stale", version=1))
    # Recovery-style authoritative install supersedes the dirty copy.
    tier["a"] = obj("a", b"authoritative", version=5)
    assert base["a"].read() == b"authoritative"
    assert "a" not in tier._entries
    assert tier["a"].version == 5
    # Union view and removal semantics.
    tier.commit(obj("b"))
    assert sorted(tier) == ["a", "b"] and len(tier) == 2
    del tier["b"]
    assert "b" not in tier
    with pytest.raises(KeyError):
        del tier["zzz"]
    assert tier.discard("a") >= tier.WRITE_DELAY
    assert len(tier) == 0


def test_cache_over_coldstore_accelerates_repeat_reads():
    base = ColdStore(k=2, m=1)
    tier = CacheTier(base, capacity=8, promote_reads=1)
    tier.commit(obj("a", b"payload"))
    tier.flush(now=1.0)  # write-back, then the cold store encodes
    assert base.encode_batches == 1
    tier._entries.clear()  # force the next read to the cold medium
    _, miss_delay = tier.fetch("a")
    assert miss_delay == base.COLD_READ_DELAY + tier.MISS_DELAY
    _, hit_delay = tier.fetch("a")  # promoted on first read
    assert hit_delay == tier.HIT_DELAY


# ----------------------------------------------------------------------
# Config normalization and the factory
# ----------------------------------------------------------------------
def test_normalize_backend_accepts_names_and_dicts():
    assert normalize_backend("memstore") == {"profile": "memstore"}
    assert normalize_backend({"profile": "coldstore"}) == {
        "profile": "coldstore", "k": 2, "m": 1}
    assert normalize_backend({"profile": "coldstore", "k": 4, "m": 2}) \
        == {"profile": "coldstore", "k": 4, "m": 2}
    for bad in ["rocksdb", {"profile": "nope"}, 7,
                {"profile": "coldstore", "k": 0},
                {"profile": "coldstore", "k": 200, "m": 90}]:
        with pytest.raises(InvalidArgument):
            normalize_backend(bad)


def test_normalize_cache_defaults_and_validation():
    assert normalize_cache({}) == {"capacity": 64, "promote_reads": 2}
    assert normalize_cache({"capacity": 8, "promote_reads": 1}) == {
        "capacity": 8, "promote_reads": 1}
    for bad in [None, "big", {"capacity": 0}, {"promote_reads": 0}]:
        with pytest.raises(InvalidArgument):
            normalize_cache(bad)


def test_make_store_dispatch():
    assert isinstance(make_store(), MemStore)
    assert isinstance(make_store("logstructured"), LogStructuredStore)
    cold = make_store({"profile": "coldstore", "k": 3, "m": 2})
    assert isinstance(cold, ColdStore)
    assert (cold.codec.k, cold.codec.m) == (3, 2)
    tier = make_store("coldstore", cache={"capacity": 16})
    assert isinstance(tier, CacheTier)
    assert isinstance(tier.base, ColdStore)
    assert tier.capacity == 16
    assert set(BACKEND_PROFILES) == {"memstore", "logstructured",
                                     "coldstore"}
