"""Unit tests for the telemetry layer: counters, tracing, admin cmds.

Covers the PerfCounters registry in isolation, trace propagation
through the daemon RPC machinery (including span nesting across
generator-handler chains and cast vs request paths), the admin-command
surface, and the crash-resets-counters rule.
"""

import pytest

from repro.errors import MalacologyError, NotFound
from repro.msg import Daemon
from repro.sim import FixedLatency, Network, Simulator, Timeout
from repro.telemetry import PerfCounters, TraceCollector


# ----------------------------------------------------------------------
# PerfCounters in isolation
# ----------------------------------------------------------------------
def test_counters_incr_and_dump():
    perf = PerfCounters(owner="t")
    perf.incr("ops")
    perf.incr("ops", 2)
    perf.gauge("depth", 7)
    assert perf.get("ops") == 3
    dump = perf.dump()
    assert dump["owner"] == "t"
    assert dump["counters"]["ops"] == 3
    assert dump["gauges"]["depth"] == 7


def test_gauge_fn_evaluated_at_dump_time():
    state = {"n": 1}
    perf = PerfCounters()
    perf.gauge_fn("n", lambda: state["n"])
    assert perf.dump()["gauges"]["n"] == 1
    state["n"] = 5
    assert perf.dump()["gauges"]["n"] == 5


def test_latency_tracker_stats_and_retention():
    perf = PerfCounters()
    for v in (0.001, 0.002, 0.003):
        perf.time("op", v, retain=True)
    tracker = perf.latency("op")
    assert tracker.count == 3
    assert tracker.stats.mean == pytest.approx(0.002)
    assert perf.samples("op") == [0.001, 0.002, 0.003]
    assert tracker.quantile(0.5) == pytest.approx(0.002)
    # Non-retaining trackers keep stats but no samples.
    perf.time("other", 0.5)
    assert perf.samples("other") == []
    with pytest.raises(ValueError):
        perf.latency("other").quantile(0.5)


def test_rate_counter_decays_with_clock():
    now = {"t": 0.0}
    perf = PerfCounters(clock=lambda: now["t"])
    perf.rate_hit("req", halflife=1.0)
    assert perf.dump()["rates"]["req"] == pytest.approx(1.0)
    now["t"] = 1.0  # one halflife later
    assert perf.dump()["rates"]["req"] == pytest.approx(0.5)


def test_reset_clears_values_but_keeps_gauge_fns():
    perf = PerfCounters()
    perf.incr("ops")
    perf.time("lat", 0.1, retain=True)
    perf.gauge_fn("depth", lambda: 42)
    perf.reset()
    assert not perf.nonzero()
    assert perf.get("ops") == 0
    assert perf.samples("lat") == []
    assert perf.dump()["gauges"]["depth"] == 42


# ----------------------------------------------------------------------
# Tracing through the RPC machinery
# ----------------------------------------------------------------------
class Frontend(Daemon):
    """Calls through to a backend from inside a generator handler."""

    def __init__(self, sim, network, backend_name, name="frontend"):
        super().__init__(sim, network, name)
        self.backend = backend_name
        self.register_handler("work", self._h_work)
        self.register_handler("notify", self._h_notify)

    def _h_work(self, src, payload):
        yield Timeout(0.001)
        value = yield self.call(self.backend, "compute", payload)
        return value + 1

    def _h_notify(self, src, payload):
        # CAST handler that itself casts onward.
        self.cast(self.backend, "poke", payload)
        if False:
            yield  # make it a generator handler


class Backend(Daemon):
    def __init__(self, sim, network, name="backend"):
        super().__init__(sim, network, name)
        self.pokes = []
        self.register_handler("compute", lambda src, p: p * 2)
        self.register_handler("fail", self._h_fail)
        self.register_handler("poke", lambda src, p: self.pokes.append(p))

    def _h_fail(self, src, payload):
        raise NotFound("nope")


def make_chain():
    sim = Simulator(seed=3)
    net = Network(sim, latency=FixedLatency(0.001))
    backend = Backend(sim, net)
    frontend = Frontend(sim, net, "backend")
    client = Daemon(sim, net, "client")
    return sim, net, frontend, backend, client


def capture_sent(net):
    sent = []
    original = net.send

    def record(src, dst, env):
        sent.append(env)
        original(src, dst, env)

    net.send = record
    return sent


def test_untraced_rpc_has_no_trace_field():
    sim, net, frontend, backend, client = make_chain()
    sent = capture_sent(net)
    fut = client.call("frontend", "work", 5)
    assert sim.run_until_complete(fut) == 11
    assert all(env.trace is None for env in sent)
    assert sim.trace_collector.trace_ids() == []


def test_traced_generator_chain_nests_spans():
    sim, net, frontend, backend, client = make_chain()

    def op():
        value = yield client.call("frontend", "work", 5)
        return value

    proc = client.spawn(client.traced(op(), "op"))
    assert sim.run_until_complete(proc) == 11

    collector = sim.trace_collector
    [trace_id] = collector.trace_ids()
    spans = collector.spans(trace_id)
    by_name = {s.name: s for s in spans}
    assert set(by_name) == {"op", "work", "compute"}
    root = by_name["op"]
    work = by_name["work"]
    compute = by_name["compute"]
    # Causal nesting: client root -> frontend handler -> backend handler.
    assert root.parent_id is None
    assert work.parent_id == root.span_id
    assert compute.parent_id == work.span_id
    assert work.daemon == "frontend" and compute.daemon == "backend"
    # Spans close inside their parents, in simulated time.
    assert root.start <= work.start <= compute.start
    assert compute.end <= work.end <= root.end
    # The tree reconstruction agrees.
    [tree] = collector.tree(trace_id)
    assert tree["span"]["name"] == "op"
    assert tree["children"][0]["span"]["name"] == "work"
    assert (tree["children"][0]["children"][0]["span"]["name"]
            == "compute")
    path = [s["name"] for s in collector.critical_path(trace_id)]
    assert path == ["op", "work", "compute"]


def test_trace_context_propagates_on_request_and_cast():
    sim, net, frontend, backend, client = make_chain()
    sent = capture_sent(net)

    def op():
        yield client.call("frontend", "work", 1)
        client.cast("frontend", "notify", "hello")
        if False:
            yield

    proc = client.spawn(client.traced(op(), "op"))
    sim.run_until_complete(proc)
    sim.run(until=sim.now + 1.0)  # let the casts land

    requests = [e for e in sent if e.kind == "request"]
    casts = [e for e in sent if e.kind == "cast"]
    responses = [e for e in sent if e.kind == "response"]
    assert requests and casts
    # Both request and cast envelopes carry the same trace id...
    trace_ids = {e.trace["trace"] for e in requests + casts}
    assert len(trace_ids) == 1
    # ...with distinct parent spans per hop.
    assert all(e.trace is not None for e in requests + casts)
    # Responses are matched by msg_id; they carry no trace context.
    assert all(e.trace is None for e in responses)
    # The onward cast (frontend -> backend "poke") is in the tree as a
    # child of the cast handler's span.
    assert backend.pokes == ["hello"]
    collector = sim.trace_collector
    [trace_id] = collector.trace_ids()
    by_name = {s.name: s for s in collector.spans(trace_id)}
    assert by_name["poke"].parent_id == by_name["notify"].span_id
    assert by_name["notify"].kind == "cast"


def test_interleaved_traced_ops_do_not_cross_contaminate():
    sim, net, frontend, backend, client = make_chain()
    client2 = Daemon(sim, net, "client2")

    def op(c):
        value = yield c.call("frontend", "work", 3)
        return value

    p1 = client.spawn(client.traced(op(client), "op-a"))
    p2 = client2.spawn(client2.traced(op(client2), "op-b"))
    sim.run_until_complete(p1)
    sim.run_until_complete(p2)

    collector = sim.trace_collector
    assert len(collector.trace_ids()) == 2
    roots = set()
    for trace_id in collector.trace_ids():
        spans = collector.spans(trace_id)
        # Each trace has its own complete root->work->compute chain,
        # even though the two ops interleave on the same frontend.
        assert len(spans) == 3
        assert all(s.trace_id == trace_id for s in spans)
        names = {s.name for s in spans}
        assert {"work", "compute"} <= names
        roots.update(names - {"work", "compute"})
    assert roots == {"op-a", "op-b"}


def test_failed_handler_span_records_error():
    sim, net, frontend, backend, client = make_chain()

    def op():
        try:
            yield client.call("backend", "fail", None)
        except NotFound:
            pass

    proc = client.spawn(client.traced(op(), "op"))
    sim.run_until_complete(proc)
    collector = sim.trace_collector
    [trace_id] = collector.trace_ids()
    by_name = {s.name: s for s in collector.spans(trace_id)}
    assert by_name["fail"].error is not None
    assert "NotFound" in by_name["fail"].error
    assert by_name["op"].error is None  # the op caught it


# ----------------------------------------------------------------------
# Admin commands
# ----------------------------------------------------------------------
def test_admin_command_dump_and_reset():
    sim, net, frontend, backend, client = make_chain()
    fut = client.call("backend", "compute", 4)
    sim.run_until_complete(fut)
    dump = backend.admin_command("telemetry.dump")
    assert dump["counters"]["rpc.rx"] == 1
    assert "rpc.compute" in dump["latency"]
    backend.admin_command("telemetry.reset")
    assert backend.admin_command("telemetry.dump")["counters"] == {}


def test_admin_commands_also_answer_over_rpc():
    sim, net, frontend, backend, client = make_chain()
    sim.run_until_complete(client.call("backend", "compute", 4))
    fut = client.call("backend", "telemetry.dump", None)
    dump = sim.run_until_complete(fut)
    assert dump["owner"] == "backend"
    assert dump["counters"]["rpc.rx"] >= 1


def test_unknown_admin_command_raises():
    sim, net, frontend, backend, client = make_chain()
    with pytest.raises(MalacologyError):
        backend.admin_command("telemetry.nope")


def test_telemetry_trace_command_lists_and_renders():
    sim, net, frontend, backend, client = make_chain()

    def op():
        value = yield client.call("frontend", "work", 5)
        return value

    proc = client.spawn(client.traced(op(), "op"))
    sim.run_until_complete(proc)
    listing = client.admin_command("telemetry.trace")
    [trace_id] = listing["traces"]
    tree = client.admin_command("telemetry.trace", {"trace_id": trace_id})
    assert tree[0]["span"]["name"] == "op"
    rendered = client.admin_command(
        "telemetry.trace", {"trace_id": trace_id, "render": True})
    assert "frontend: work" in rendered
    assert "backend: compute" in rendered


# ----------------------------------------------------------------------
# Crash semantics (regression: counters must not survive a crash)
# ----------------------------------------------------------------------
def test_crash_resets_perf_counters():
    sim, net, frontend, backend, client = make_chain()
    sim.run_until_complete(client.call("backend", "compute", 4))
    assert backend.perf.nonzero()
    backend.crash()
    assert not backend.perf.nonzero()
    assert backend.admin_command("telemetry.dump")["counters"] == {}
    backend.restart()
    # A fresh life starts counting from zero.
    sim.run_until_complete(client.call("backend", "compute", 4))
    assert backend.perf.get("rpc.rx") == 1


def test_trace_collector_is_shared_and_resettable():
    sim = Simulator(seed=9)
    collector = TraceCollector.of(sim)
    assert TraceCollector.of(sim) is collector
    ctx = collector.begin_trace("op", daemon="x")
    collector.finish(ctx.span_id)
    assert collector.trace_ids() == [ctx.trace_id]
    collector.reset()
    assert collector.trace_ids() == []
