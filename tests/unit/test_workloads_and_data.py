"""Unit tests: workload helpers, survey dataset, striping, policies."""

import pytest

from repro.data import category_rows, growth_series
from repro.data.ceph_survey import TOTAL_METHODS, is_accelerating
from repro.errors import InvalidArgument, PolicyError
from repro.mantle import MantlePolicy, builtin
from repro.workloads import interleaving_runs
from repro.zlog import StripeLayout


# ----------------------------------------------------------------------
# Survey dataset
# ----------------------------------------------------------------------
def test_growth_series_shape():
    series = growth_series()
    assert series[0][0] == 2010 and series[-1][0] == 2016
    assert series[-1] == (2016, 28, 95)
    assert is_accelerating(series)


def test_category_totals_match_table():
    rows = category_rows()
    assert sum(n for _, _, n in rows) == TOTAL_METHODS == 95


def test_is_accelerating_rejects_linear_series():
    linear = [(2010 + i, i, 10 * i) for i in range(7)]
    assert not is_accelerating(linear)


# ----------------------------------------------------------------------
# Striping
# ----------------------------------------------------------------------
def test_stripe_layout_round_robin():
    layout = StripeLayout("log", width=3)
    assert layout.object_of(0) == layout.object_of(3)
    assert len({layout.object_of(p) for p in range(3)}) == 3
    assert len(layout.all_objects()) == 3


def test_stripe_layout_validation():
    with pytest.raises(InvalidArgument):
        StripeLayout("bad/name")
    with pytest.raises(InvalidArgument):
        StripeLayout("ok", width=0)
    with pytest.raises(InvalidArgument):
        StripeLayout("ok").object_of(-1)


def test_stripe_layout_round_trip():
    layout = StripeLayout("log", width=7, pool="other")
    again = StripeLayout.from_dict(layout.to_dict())
    assert again.all_objects() == layout.all_objects()
    assert again.pool == "other"


# ----------------------------------------------------------------------
# Interleaving analysis
# ----------------------------------------------------------------------
def test_interleaving_runs_basic():
    traces = [
        [(0.0, 0), (0.0, 1), (0.0, 4)],   # client 0
        [(0.0, 2), (0.0, 3)],             # client 1
    ]
    assert interleaving_runs(traces) == [2, 2, 1]


def test_interleaving_runs_empty():
    assert interleaving_runs([[], []]) == []


# ----------------------------------------------------------------------
# Builtin policies compile and behave
# ----------------------------------------------------------------------
def row(load, cpu=0.5):
    return {"load": load, "cpu": cpu, "req_rate": load, "inodes": 1}


@pytest.mark.parametrize("name,source", sorted(builtin.CATALOG.items()))
def test_every_builtin_policy_compiles(name, source):
    MantlePolicy(name, source)


def test_greedy_spill_half_sends_half():
    policy = MantlePolicy("spill", builtin.GREEDY_SPILL_HALF)
    go, targets, _ = policy.decide([row(1000), row(10)], 0, {})
    assert go
    assert targets[1] == pytest.approx(500.0)


def test_greedy_spill_quiet_below_min_load():
    policy = MantlePolicy("spill", builtin.GREEDY_SPILL_HALF)
    go, _, _ = policy.decide([row(5), row(0)], 0, {})
    assert not go


def test_cephfs_mode_spreads_excess_to_underloaded():
    policy = MantlePolicy("wl", builtin.CEPHFS_WORKLOAD)
    go, targets, _ = policy.decide(
        [row(900), row(50), row(50)], 0, {})
    assert go
    assert targets[1] > 0 and targets[2] > 0
    assert targets[0] == 0


def test_mantle_sequencer_waits_for_underloaded_receiver():
    policy = MantlePolicy("seq", builtin.MANTLE_SEQUENCER)
    state = {}
    # All ranks loaded: no receiver below half the average -> hold.
    go, _, _ = policy.decide([row(500), row(450), row(480)], 0, state)
    assert not go
    # A cold receiver exists, but the first positive check arms the
    # cooldown; the next tick migrates.
    go1, _, _ = policy.decide([row(900), row(10), row(900)], 0, state)
    go2, targets, _ = policy.decide([row(900), row(10), row(900)], 0,
                                    state)
    assert [go1, go2].count(True) == 1
    if go2:
        assert targets[1] > 0


def test_with_routing_adds_mode():
    src = builtin.with_routing(builtin.GREEDY_SPILL_HALF, "proxy")
    policy = MantlePolicy("routed", src)
    _, _, routing = policy.decide([row(0), row(0)], 0, {})
    assert routing == "proxy"
    with pytest.raises(ValueError):
        builtin.with_routing(builtin.GREEDY_SPILL_HALF, "bogus")


def test_with_backoff_suppresses_consecutive_decisions():
    src = builtin.with_backoff(builtin.GREEDY_SPILL_HALF, 2)
    policy = MantlePolicy("backoff", src)
    state = {}
    decisions = [policy.decide([row(1000), row(10)], 0, state)[0]
                 for _ in range(6)]
    # fire, then 2 suppressed ticks, then fire again...
    assert decisions == [True, False, False, True, False, False]


def test_policy_routing_validation():
    bad = builtin.GREEDY_SPILL_HALF + "\ndef routing():\n    return 'x'\n"
    policy = MantlePolicy("bad-routing", bad)
    with pytest.raises(PolicyError):
        policy.decide([row(0), row(0)], 0, {})
