"""Unit tests: ZLog naming helpers and the LogBackedDict apply logic."""

import pytest

from repro.errors import InvalidArgument
from repro.zlog.kvstore import LogBackedDict
from repro.zlog.log import ZLog, epoch_key, layout_key, sequencer_path
from repro.zlog.striping import StripeLayout


def test_naming_helpers_are_namespaced_per_log():
    assert sequencer_path("mylog") == "/zlog/mylog/seq"
    assert epoch_key("mylog") == "zlog/mylog/epoch"
    assert layout_key("mylog") == "zlog/mylog/layout"
    assert sequencer_path("a") != sequencer_path("b")


def test_zlog_default_layout_matches_name():
    log = ZLog(client=None, name="events")
    assert log.layout.log_name == "events"
    assert log.epoch == 1


def test_log_backed_dict_apply_semantics():
    d = LogBackedDict(log=None)
    d._apply(0, {"state": "written",
                 "data": {"op": "put", "key": "a", "value": 1}})
    d._apply(1, {"state": "filled"})  # holes are no-ops
    d._apply(2, {"state": "written",
                 "data": {"op": "put", "key": "b", "value": 2}})
    d._apply(3, {"state": "written", "data": {"op": "del", "key": "a"}})
    assert d._state == {"b": 2}
    assert d.local_get("b") == 2
    assert d.local_get("ghost", "default") == "default"


def test_log_backed_dict_rejects_unknown_commands():
    d = LogBackedDict(log=None)
    with pytest.raises(InvalidArgument):
        d._apply(0, {"state": "written", "data": {"op": "explode"}})


def test_transactional_table_verdicts_are_deterministic():
    from repro.zlog.table import TransactionalTable

    def replay(entries):
        t = TransactionalTable(log=None)
        for pos, txn in enumerate(entries):
            t._apply(pos, {"state": "written", "data": txn})
        return t

    entries = [
        {"kind": "txn", "reads": {}, "writes": {"x": 1}},
        {"kind": "txn", "reads": {"x": 0}, "writes": {"x": 2}},
        {"kind": "txn", "reads": {"x": 0}, "writes": {"x": 99}},  # stale
        {"kind": "txn", "reads": {"x": 1}, "writes": {"y": 5}},
    ]
    a, b = replay(entries), replay(entries)
    assert a._state == b._state
    assert a._verdicts == b._verdicts == {0: True, 1: True, 2: False,
                                          3: True}
    assert a.commits == 3 and a.aborts == 1
    assert a._state["x"][0] == 2 and a._state["y"][0] == 5


def test_stripe_layout_positions_cover_all_objects_evenly():
    layout = StripeLayout("even", width=4)
    counts = {}
    for pos in range(400):
        counts[layout.object_of(pos)] = counts.get(
            layout.object_of(pos), 0) + 1
    assert set(counts.values()) == {100}
